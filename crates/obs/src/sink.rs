//! Trace sinks and the versioned JSONL wire format.
//!
//! A trace serialises as one JSON object per line:
//!
//! ```text
//! {"type":"trace","v":1,"wall_ns":81234567,"threads":4}
//! {"type":"span","phase":"solve","app":"forged-003","seed":0,"site":"b0@7","seq":4,"parent":2,"start_ns":151,"dur_ns":90,"cache_hit":false}
//! {"type":"counter","name":"solver.queries","value":412}
//! {"type":"hist","name":"scheduler.queue_wait_ns","count":31,"sum":90000,"max":20000,"p50":4095,"p99":16383}
//! ```
//!
//! The header line carries the schema version ([`TRACE_SCHEMA_VERSION`]);
//! loading rejects other versions with a clear error. The codec is
//! hand-rolled (this crate has zero dependencies) and only needs flat
//! objects of string / unsigned-integer / bool / null values.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::metrics::HistSummary;
use crate::span::{Phase, Span, Trace};

/// Version stamped into (and required from) the JSONL header line.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Error from parsing a JSONL trace or writing one to disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// Human-readable description, including the offending line number.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TraceError {}

fn err(message: impl Into<String>) -> TraceError {
    TraceError {
        message: message.into(),
    }
}

/// Destination for a finished campaign trace.
pub trait TraceSink {
    /// Deliver the merged trace. Called once, at campaign end.
    fn emit(&mut self, trace: &Trace) -> Result<(), TraceError>;
}

/// Discards the trace.
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _trace: &Trace) -> Result<(), TraceError> {
        Ok(())
    }
}

/// Keeps the last `capacity` spans (and all metrics) in memory — for
/// tests and embedded consumers that only need the tail.
pub struct RingSink {
    capacity: usize,
    /// Trace retained by the last [`TraceSink::emit`] call, spans
    /// truncated to the newest `capacity`.
    pub last: Option<Trace>,
}

impl RingSink {
    /// A ring sink retaining at most `capacity` spans.
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity,
            last: None,
        }
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, trace: &Trace) -> Result<(), TraceError> {
        let mut kept = trace.clone();
        let n = kept.spans.len();
        if n > self.capacity {
            kept.spans.drain(..n - self.capacity);
        }
        self.last = Some(kept);
        Ok(())
    }
}

/// Writes the trace to a JSONL file (overwriting).
pub struct JsonlFileSink {
    path: PathBuf,
}

impl JsonlFileSink {
    /// A sink writing to `path` on emit.
    pub fn new(path: impl Into<PathBuf>) -> JsonlFileSink {
        JsonlFileSink { path: path.into() }
    }

    /// Destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TraceSink for JsonlFileSink {
    fn emit(&mut self, trace: &Trace) -> Result<(), TraceError> {
        std::fs::write(&self.path, trace.to_jsonl())
            .map_err(|e| err(format!("trace: cannot write {}: {e}", self.path.display())))
    }
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Trace {
    /// Serialise to the versioned JSONL wire format.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"type\":\"trace\",\"v\":{TRACE_SCHEMA_VERSION}");
        if let Some(wall) = self.wall_ns {
            let _ = write!(out, ",\"wall_ns\":{wall}");
        }
        if let Some(threads) = self.threads {
            let _ = write!(out, ",\"threads\":{threads}");
        }
        out.push_str("}\n");
        for span in &self.spans {
            out.push_str("{\"type\":\"span\",\"phase\":");
            push_json_str(&mut out, span.phase.as_str());
            out.push_str(",\"app\":");
            push_json_str(&mut out, &span.app);
            let _ = write!(out, ",\"seed\":{},\"seq\":{}", span.seed, span.seq);
            if let Some(site) = &span.site {
                out.push_str(",\"site\":");
                push_json_str(&mut out, site);
            }
            if let Some(parent) = span.parent {
                let _ = write!(out, ",\"parent\":{parent}");
            }
            let _ = write!(
                out,
                ",\"start_ns\":{},\"dur_ns\":{}",
                span.start_ns, span.dur_ns
            );
            if let Some(hit) = span.cache_hit {
                let _ = write!(out, ",\"cache_hit\":{hit}");
            }
            out.push_str("}\n");
        }
        for (name, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            push_json_str(&mut out, name);
            let _ = writeln!(out, ",\"value\":{value}}}");
        }
        for (name, h) in &self.hists {
            out.push_str("{\"type\":\"hist\",\"name\":");
            push_json_str(&mut out, name);
            let _ = writeln!(
                out,
                ",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
                h.count, h.sum, h.max, h.p50, h.p99
            );
        }
        out
    }

    /// Parse the JSONL wire format back into a trace. Strict on the
    /// header (type + version) and on per-line record shape.
    pub fn from_jsonl(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let Some((_, header)) = lines.next() else {
            return Err(err("trace: empty input (missing header line)"));
        };
        let head = parse_flat_object(header).map_err(|e| err(format!("trace line 1: {e}")))?;
        if head.get("type").and_then(FlatValue::as_str) != Some("trace") {
            return Err(err(
                "trace: first line must be the header {\"type\":\"trace\",...}",
            ));
        }
        match head.get("v").and_then(FlatValue::as_u64) {
            Some(TRACE_SCHEMA_VERSION) => {}
            Some(v) => {
                return Err(err(format!(
                    "trace: unsupported schema version {v} (expected {TRACE_SCHEMA_VERSION})"
                )))
            }
            None => return Err(err("trace: header missing integer field \"v\"")),
        }
        let mut trace = Trace {
            wall_ns: head.get("wall_ns").and_then(FlatValue::as_u64),
            threads: head
                .get("threads")
                .and_then(FlatValue::as_u64)
                .map(|t| t as u32),
            ..Trace::default()
        };
        for (idx, line) in lines {
            let lineno = idx + 1;
            let obj =
                parse_flat_object(line).map_err(|e| err(format!("trace line {lineno}: {e}")))?;
            let kind = obj
                .get("type")
                .and_then(FlatValue::as_str)
                .ok_or_else(|| err(format!("trace line {lineno}: missing \"type\"")))?;
            match kind {
                "span" => trace.spans.push(span_from(&obj, lineno)?),
                "counter" => {
                    let name = req_str(&obj, "name", lineno)?;
                    trace.counters.insert(name, req_u64(&obj, "value", lineno)?);
                }
                "hist" => {
                    let name = req_str(&obj, "name", lineno)?;
                    trace.hists.insert(
                        name,
                        HistSummary {
                            count: req_u64(&obj, "count", lineno)?,
                            sum: req_u64(&obj, "sum", lineno)?,
                            max: req_u64(&obj, "max", lineno)?,
                            p50: req_u64(&obj, "p50", lineno)?,
                            p99: req_u64(&obj, "p99", lineno)?,
                        },
                    );
                }
                other => {
                    return Err(err(format!(
                        "trace line {lineno}: unknown record type {other:?}"
                    )))
                }
            }
        }
        Ok(trace)
    }
}

fn span_from(obj: &BTreeMap<String, FlatValue>, lineno: usize) -> Result<Span, TraceError> {
    let phase_name = req_str(obj, "phase", lineno)?;
    let phase = Phase::parse(&phase_name)
        .ok_or_else(|| err(format!("trace line {lineno}: unknown phase {phase_name:?}")))?;
    Ok(Span {
        phase,
        app: req_str(obj, "app", lineno)?,
        seed: req_u64(obj, "seed", lineno)? as u32,
        site: obj
            .get("site")
            .and_then(FlatValue::as_str)
            .map(str::to_string),
        seq: req_u64(obj, "seq", lineno)? as u32,
        parent: obj
            .get("parent")
            .and_then(FlatValue::as_u64)
            .map(|p| p as u32),
        start_ns: req_u64(obj, "start_ns", lineno)?,
        dur_ns: req_u64(obj, "dur_ns", lineno)?,
        cache_hit: obj.get("cache_hit").and_then(FlatValue::as_bool),
    })
}

fn req_str(
    obj: &BTreeMap<String, FlatValue>,
    key: &str,
    lineno: usize,
) -> Result<String, TraceError> {
    obj.get(key)
        .and_then(FlatValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| err(format!("trace line {lineno}: missing string field {key:?}")))
}

fn req_u64(obj: &BTreeMap<String, FlatValue>, key: &str, lineno: usize) -> Result<u64, TraceError> {
    obj.get(key).and_then(FlatValue::as_u64).ok_or_else(|| {
        err(format!(
            "trace line {lineno}: missing integer field {key:?}"
        ))
    })
}

/// A value inside a flat (non-nested) JSON object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum FlatValue {
    Str(String),
    UInt(u64),
    Bool(bool),
    #[allow(dead_code)]
    Null,
}

impl FlatValue {
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            FlatValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            FlatValue::UInt(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            FlatValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Minimal parser for one flat JSON object: string keys, values limited
/// to strings, unsigned integers, booleans, and null.
pub(crate) fn parse_flat_object(line: &str) -> Result<BTreeMap<String, FlatValue>, String> {
    let bytes = line.trim().as_bytes();
    let mut pos = 0usize;
    let mut obj = BTreeMap::new();
    expect(bytes, &mut pos, b'{')?;
    skip_ws(bytes, &mut pos);
    if peek(bytes, pos) == Some(b'}') {
        return Ok(obj);
    }
    loop {
        skip_ws(bytes, &mut pos);
        let key = parse_string(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        expect(bytes, &mut pos, b':')?;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        obj.insert(key, value);
        skip_ws(bytes, &mut pos);
        match peek(bytes, pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                break;
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(obj)
}

fn peek(bytes: &[u8], pos: usize) -> Option<u8> {
    bytes.get(pos).copied()
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(peek(bytes, *pos), Some(b' ' | b'\t')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if peek(bytes, *pos) == Some(want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", want as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<FlatValue, String> {
    match peek(bytes, *pos) {
        Some(b'"') => Ok(FlatValue::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(FlatValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(FlatValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(FlatValue::Null)
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while matches!(peek(bytes, *pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(FlatValue::UInt)
                .ok_or_else(|| format!("invalid integer at byte {start}"))
        }
        _ => Err(format!("unsupported value at byte {pos}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match peek(bytes, *pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match peek(bytes, *pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (bytes are valid UTF-8: the
                // input came in as &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut trace = Trace {
            wall_ns: Some(123_456),
            threads: Some(4),
            ..Trace::default()
        };
        trace.spans.push(Span {
            phase: Phase::Identify,
            app: "app \"quoted\"\n".into(),
            seed: 7,
            site: None,
            seq: 0,
            parent: None,
            start_ns: 10,
            dur_ns: 90,
            cache_hit: None,
        });
        trace.spans.push(Span {
            phase: Phase::Solve,
            app: "forged-001".into(),
            seed: 0,
            site: Some("b0@3".into()),
            seq: 4,
            parent: Some(2),
            start_ns: 500,
            dur_ns: 20,
            cache_hit: Some(true),
        });
        trace.counters.insert("solver.queries".into(), 42);
        trace.hists.insert(
            "queue_wait_ns".into(),
            HistSummary {
                count: 3,
                sum: 600,
                max: 400,
                p50: 255,
                p99: 511,
            },
        );
        trace
    }

    #[test]
    fn jsonl_round_trips() {
        let trace = sample_trace();
        let text = trace.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back, trace);
        // And the serialised form is stable.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn rejects_wrong_version_and_garbage() {
        let bad_version = "{\"type\":\"trace\",\"v\":99}\n";
        let e = Trace::from_jsonl(bad_version).unwrap_err();
        assert!(e.message.contains("unsupported schema version 99"), "{e}");

        let no_header = "{\"type\":\"span\"}\n";
        assert!(Trace::from_jsonl(no_header)
            .unwrap_err()
            .message
            .contains("header"));

        assert!(Trace::from_jsonl("").unwrap_err().message.contains("empty"));

        let bad_line = "{\"type\":\"trace\",\"v\":1}\nnot json\n";
        assert!(Trace::from_jsonl(bad_line)
            .unwrap_err()
            .message
            .contains("line 2"));

        let bad_span = "{\"type\":\"trace\",\"v\":1}\n{\"type\":\"span\",\"phase\":\"warp\",\"app\":\"a\",\"seed\":0,\"seq\":0,\"start_ns\":0,\"dur_ns\":0}\n";
        assert!(Trace::from_jsonl(bad_span)
            .unwrap_err()
            .message
            .contains("unknown phase"));
    }

    #[test]
    fn ring_sink_keeps_newest_spans() {
        let trace = sample_trace();
        let mut ring = RingSink::new(1);
        ring.emit(&trace).unwrap();
        let kept = ring.last.as_ref().unwrap();
        assert_eq!(kept.spans.len(), 1);
        assert_eq!(kept.spans[0].phase, Phase::Solve);
        assert_eq!(kept.counters, trace.counters);
    }

    #[test]
    fn null_sink_accepts_anything() {
        NullSink.emit(&sample_trace()).unwrap();
    }

    #[test]
    fn file_sink_round_trips_via_disk() {
        let dir = std::env::temp_dir().join(format!("diode-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let trace = sample_trace();
        JsonlFileSink::new(&path).emit(&trace).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(Trace::from_jsonl(&text).unwrap(), trace);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
