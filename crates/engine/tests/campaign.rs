//! Engine integration tests on the five §5 benchmark applications:
//! parallel campaigns must be byte-identical to the sequential path, and
//! the shared solver cache must absorb repeated enforcement queries.

use std::sync::Mutex;

use diode_core::{analyze_program, DiodeConfig, SiteOutcome};
use diode_engine::{
    analyze_program_parallel, CampaignApp, CampaignEvent, CampaignSpec, ExecutionMode, ProgressSink,
};

fn benchmark_campaign() -> Vec<CampaignApp> {
    diode_apps::all_apps()
        .into_iter()
        .map(|app| CampaignApp::new(app.name, app.program, app.format, app.seed))
        .collect()
}

fn fingerprint(outcome: &SiteOutcome) -> String {
    match outcome {
        SiteOutcome::Exposed(b) => format!(
            "exposed:{}:{:02x?}:{:?}",
            b.enforced, b.input, b.enforced_labels
        ),
        SiteOutcome::TargetUnsat => "unsat".into(),
        SiteOutcome::Prevented(r) => format!("prevented:{r:?}"),
        SiteOutcome::Unknown => "unknown".into(),
    }
}

#[test]
fn parallel_campaign_is_byte_identical_to_sequential() {
    let parallel = CampaignSpec::new(benchmark_campaign()).run();
    let sequential = CampaignSpec {
        mode: ExecutionMode::Sequential,
        // The reference run: no cache at all, original solve path.
        shared_cache: false,
        ..CampaignSpec::new(benchmark_campaign())
    }
    .run();

    assert_eq!(parallel.counts(), sequential.counts());
    assert_eq!(parallel.counts(), (40, 14, 17, 9), "paper Table 1 totals");
    assert_eq!(
        parallel.outcome_fingerprint(),
        sequential.outcome_fingerprint(),
        "site outcomes must not depend on scheduling or caching"
    );
    assert!(sequential.cache.is_none());
    assert_eq!(sequential.threads, 1);
}

#[test]
fn parallel_campaign_matches_core_analyze_program() {
    // The engine against the untouched diode-core sequential entry point.
    let report = CampaignSpec::new(benchmark_campaign()).run();
    let config = DiodeConfig::default();
    for (unit, app) in report.units.iter().zip(diode_apps::all_apps()) {
        let reference = analyze_program(&app.program, &app.seed, &app.format, &config);
        assert_eq!(unit.counts(), reference.counts(), "{}", app.name);
        assert_eq!(unit.sites.len(), reference.sites.len());
        for (got, want) in unit.sites.iter().zip(&reference.sites) {
            assert_eq!(got.report.site, want.site, "{}: site order", app.name);
            assert_eq!(
                fingerprint(&got.report.outcome),
                fingerprint(&want.outcome),
                "{}/{}",
                app.name,
                want.site
            );
        }
    }
}

#[test]
fn analyze_program_parallel_is_a_drop_in_replacement() {
    let config = DiodeConfig::default();
    for app in diode_apps::all_apps() {
        let seq = analyze_program(&app.program, &app.seed, &app.format, &config);
        let par = analyze_program_parallel(&app.program, &app.seed, &app.format, &config, None);
        assert_eq!(par.counts(), seq.counts(), "{}", app.name);
        for (p, s) in par.sites.iter().zip(&seq.sites) {
            assert_eq!(p.site, s.site, "{}: order preserved", app.name);
            assert_eq!(fingerprint(&p.outcome), fingerprint(&s.outcome));
        }
    }
}

#[test]
fn every_exposed_bug_reverifies() {
    let report = CampaignSpec::new(benchmark_campaign()).run();
    let mut exposed = 0;
    for unit in &report.units {
        for site in &unit.sites {
            match site.report.outcome {
                SiteOutcome::Exposed(_) => {
                    exposed += 1;
                    assert_eq!(
                        site.verified,
                        Some(true),
                        "{}/{} failed re-validation",
                        unit.app,
                        site.report.site
                    );
                }
                _ => assert_eq!(site.verified, None),
            }
        }
    }
    assert_eq!(exposed, 14);
}

#[test]
fn shared_cache_absorbs_enforcement_queries() {
    let report = CampaignSpec::new(benchmark_campaign()).run();
    let stats = report.cache.expect("default campaign installs a cache");
    // Re-validation re-issues every exposed site's final constraint, and
    // any site with ≥1 enforcement iteration re-solves overlapping
    // queries; 14 exposed sites ⇒ at least 14 hits.
    assert!(stats.hits >= 14, "expected ≥14 cache hits, got {stats:?}");
    assert!(stats.misses > 0);
    assert!(stats.entries > 0);
    assert!(stats.hit_rate() > 0.0);
}

#[test]
fn cache_hit_on_a_site_requiring_enforcement() {
    // A single-site campaign whose bug needs ≥1 enforcement iteration:
    // the Figure 2 Dillo site. The cache must report hits even for this
    // lone unit (the re-validation query repeats the final φ′∧β solve).
    let dillo = diode_apps::dillo::app();
    let report = CampaignSpec::new(vec![CampaignApp::new(
        dillo.name,
        dillo.program,
        dillo.format,
        dillo.seed,
    )])
    .run();
    let unit = report.unit("Dillo 2.1").expect("unit present");
    let fig2 = unit
        .sites
        .iter()
        .find(|s| s.report.site == "png.c@203")
        .expect("figure 2 site");
    let bug = fig2.report.outcome.bug().expect("exposed");
    assert!(bug.enforced >= 1, "png.c@203 requires enforcement");
    let stats = report.cache.expect("cache on");
    assert!(stats.hits >= 1, "repeat query must hit: {stats:?}");
}

#[test]
fn snapshot_campaign_is_byte_identical_to_full_reexecution() {
    // The differential-testing contract of prefix snapshots: the
    // snapshot-off config preserves the original full-re-execution path,
    // and the default snapshot-on campaign must match it byte for byte.
    let with_snapshots = CampaignSpec::new(benchmark_campaign()).run();
    let mut spec = CampaignSpec::new(benchmark_campaign());
    spec.config.prefix_snapshots = false;
    let without = spec.run();

    assert_eq!(with_snapshots.counts(), without.counts());
    assert_eq!(
        with_snapshots.outcome_fingerprint(),
        without.outcome_fingerprint(),
        "prefix snapshots must not change any finding"
    );
    assert!(without.snapshots.is_none(), "disabled ⇒ no counters");
    let stats = with_snapshots
        .snapshots
        .expect("default campaign shares a snapshot cache");
    // The identify-time warm-up captures one prefix snapshot per target
    // site, and from then on every candidate test and every stage-2
    // extraction resumes instead of re-executing from `main`.
    assert_eq!(stats.captures, 40, "one capture per §5 target site");
    assert_eq!(stats.entries, stats.captures, "{stats:?}");
    assert!(stats.resumes >= 40, "every site tests ≥1 candidate");
    assert_eq!(stats.hits, stats.resumes, "seed-prefix snapshots validate");
    assert_eq!(stats.misses, 0, "warmed campaigns never re-execute");
    assert_eq!(stats.extract_resumes, 40, "every extraction resumes");
}

#[test]
fn progress_events_cover_every_unit_and_site() {
    #[derive(Default)]
    struct Recorder {
        lines: Mutex<Vec<String>>,
    }
    impl ProgressSink for Recorder {
        fn on_event(&self, event: CampaignEvent<'_>) {
            let line = match event {
                CampaignEvent::UnitStarted { app, seed } => format!("start {app}#{seed}"),
                CampaignEvent::SitesIdentified { app, seed, sites } => {
                    format!("identified {app}#{seed} {sites}")
                }
                CampaignEvent::SiteFinished { app, site, .. } => format!("site {app}/{site}"),
                CampaignEvent::Finished { .. } => "finished".to_string(),
            };
            self.lines.lock().unwrap().push(line);
        }
    }
    let recorder = Recorder::default();
    let report = CampaignSpec::new(benchmark_campaign()).run_with_progress(&recorder);
    let lines = recorder.lines.into_inner().unwrap();
    assert_eq!(lines.iter().filter(|l| l.starts_with("start ")).count(), 5);
    assert_eq!(
        lines.iter().filter(|l| l.starts_with("site ")).count(),
        report.counts().0
    );
    assert_eq!(lines.last().map(String::as_str), Some("finished"));
    assert_eq!(report.jobs, 5 + report.counts().0);
}

#[test]
fn site_finished_events_carry_live_cache_and_snapshot_counters() {
    // Satellite of the observability PR: progress events surface the
    // shared solver-cache and snapshot-cache counters as they evolve, so
    // live consoles can show hit rates mid-campaign.
    #[derive(Default)]
    struct Watcher {
        cache_rates: Mutex<Vec<(u64, u64)>>,
        snapshot_seen: Mutex<bool>,
    }
    impl ProgressSink for Watcher {
        fn on_event(&self, event: CampaignEvent<'_>) {
            if let CampaignEvent::SiteFinished {
                cache, snapshots, ..
            } = event
            {
                let cache = cache.expect("shared cache is on: every event carries its stats");
                self.cache_rates
                    .lock()
                    .unwrap()
                    .push((cache.hits, cache.misses));
                if snapshots.is_some() {
                    *self.snapshot_seen.lock().unwrap() = true;
                }
            }
        }
    }
    let watcher = Watcher::default();
    let report = CampaignSpec::new(benchmark_campaign()).run_with_progress(&watcher);
    let rates = watcher.cache_rates.into_inner().unwrap();
    assert_eq!(rates.len(), report.counts().0);
    let live_peak = rates.iter().map(|(h, m)| h + m).max().unwrap();
    assert!(
        live_peak > 0,
        "the campaign issued solver queries, so the live counters must move"
    );
    let cache = report.cache.expect("shared cache stats in the report");
    assert!(
        cache.hits + cache.misses >= live_peak,
        "final report counters ({} + {}) dominate every live snapshot ({live_peak})",
        cache.hits,
        cache.misses
    );
    assert!(
        watcher.snapshot_seen.into_inner().unwrap(),
        "prefix snapshots are on by default: events carry snapshot stats"
    );
}

#[test]
fn multi_seed_units_are_independent() {
    // Same app twice under different seeds: units must aggregate per seed
    // and stay in spec order.
    let a = diode_apps::vlc::app();
    let b = diode_apps::vlc::app();
    let spec = CampaignSpec::new(vec![CampaignApp::new(
        "VLC twice",
        a.program,
        a.format,
        a.seed.clone(),
    )
    .with_seed(b.seed)]);
    let report = spec.run();
    assert_eq!(report.units.len(), 2);
    assert_eq!(report.units[0].seed_index, 0);
    assert_eq!(report.units[1].seed_index, 1);
    assert_eq!(report.units[0].counts(), report.units[1].counts());
    assert_eq!(
        report.units[0].sites.len(),
        report.units[1].sites.len(),
        "identical seeds ⇒ identical site lists"
    );
}
