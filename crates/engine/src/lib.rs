//! # diode-engine — parallel campaign scheduler + shared solver cache
//!
//! The DIODE pipeline analyzes each target allocation site independently
//! (paper §4, Figure 7) and re-solves a growing constraint φ′∧β on every
//! enforcement iteration — embarrassingly parallel work with heavy query
//! overlap. This crate owns campaign-scale orchestration on top of
//! `diode-core`:
//!
//! * [`scheduler`] — a work-stealing job scheduler (global injector +
//!   per-worker deques over scoped threads, plain `std`) that fans
//!   `(program, seed, site)` jobs across all cores;
//! * a shared **solver-query cache** ([`SolverCache`], re-exported from
//!   `diode-solver`) installed across every worker, memoizing
//!   `Sat`/`Unsat` outcomes behind structural fingerprints of the
//!   constraints;
//! * the [`Campaign` API](CampaignSpec): many apps × seeds in one batch,
//!   per-site [progress events](CampaignEvent), deterministic
//!   site-label-ordered aggregation, and per-bug re-validation.
//!
//! Determinism is a contract: a parallel campaign's [`CampaignReport`] is
//! byte-identical (site outcomes, enforcement counts, triggering inputs)
//! to the sequential fallback's, because every job is a pure function and
//! aggregation ignores completion order. The sequential path stays
//! available via [`ExecutionMode::Sequential`] or by building with
//! `--no-default-features` (dropping the `parallel` feature).
//!
//! ```
//! use diode_engine::{CampaignApp, CampaignSpec};
//! use diode_format::FormatDesc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = diode_lang::parse(r#"
//!     fn main() {
//!         n = zext32(in[0]) << 8 | zext32(in[1]);
//!         if n > 50000 { error("implausible"); }
//!         buf = alloc("demo@4", n * 100000);
//!         t = zext64(n) * 100000u64;
//!         p = 0u64;
//!         while p < 16u64 { buf[t * p / 16u64] = 0u8; p = p + 1u64; }
//!     }
//! "#)?;
//! let spec = CampaignSpec::new(vec![CampaignApp::new(
//!     "demo",
//!     program,
//!     FormatDesc::new("demo"),
//!     vec![0x00, 0x08],
//! )]);
//! let report = spec.run();
//! assert_eq!(report.counts().1, 1, "one exposed site");
//! // The campaign re-validated the bug through the shared cache:
//! assert_eq!(report.units[0].sites[0].verified, Some(true));
//! assert!(report.cache.unwrap().hits >= 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod campaign;
pub mod scheduler;

pub use campaign::{
    analyze_program_parallel, CampaignApp, CampaignEvent, CampaignReport, CampaignSpec,
    CorpusSuite, ExecutionMode, NoProgress, ProgressSink, PulseConfig, SiteRecord, SnapshotKeys,
    UnitReport,
};
pub use diode_core::{SnapshotCache, SnapshotStats};
pub use diode_obs::{
    HeartbeatSample, PhaseBreakdown, PulseBus, PulseEvent, Recorder, Subscriber, WorkerState,
};
pub use diode_solver::{CacheStats, SolverCache};
