//! A work-stealing job scheduler over scoped threads.
//!
//! Campaign analysis is embarrassingly parallel — every `(program, seed,
//! site)` job is a pure function — but jobs are wildly uneven: one site
//! may solve in microseconds (interval presolve) while its neighbour runs
//! several enforcement iterations of CDCL search. A fixed partition would
//! leave cores idle behind the slow sites, so the scheduler uses the
//! classic injector/deque shape:
//!
//! * a global **injector** receives the initial job batch;
//! * each worker owns a **deque**: jobs it spawns (e.g. per-site jobs
//!   discovered while running a stage-1 identification job) are pushed to
//!   the *front* of its own deque and popped LIFO for locality;
//! * an idle worker first drains its own deque, then the injector, then
//!   **steals** from the *back* of a sibling's deque, scanning siblings
//!   starting at its own index so thieves spread out.
//!
//! Everything is plain `std`: scoped threads (`std::thread::scope`) let
//! jobs borrow the campaign's programs and formats, and short critical
//! sections around `VecDeque`s stand in for lock-free Chase–Lev deques —
//! the jobs here are milliseconds long, so queue overhead is noise.
//!
//! Determinism: the scheduler makes **no ordering promises** (completion
//! order depends on stealing), so it returns results tagged however the
//! caller's `worker` function chooses; `diode-engine`'s campaign layer
//! re-aggregates them in site-label order, which is what makes parallel
//! campaigns byte-identical to sequential ones.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use diode_obs::{Recorder, SchedGauges};

/// Handle workers use to spawn follow-up jobs onto their own deque.
pub struct Spawner<'a, J> {
    me: usize,
    local: &'a Mutex<VecDeque<J>>,
    pending: &'a AtomicUsize,
    gauges: Option<&'a SchedGauges>,
}

impl<J> Spawner<'_, J> {
    /// Enqueues a job at the front of the calling worker's deque (LIFO:
    /// it will typically run next on this worker, unless stolen).
    pub fn spawn(&self, job: J) {
        // Count before publishing so no worker can observe an empty system
        // while this job is in flight.
        self.pending.fetch_add(1, Ordering::SeqCst);
        if let Some(g) = self.gauges {
            g.job_queued();
        }
        self.local.lock().unwrap().push_front(job);
    }

    /// The calling worker's index (`0..threads`). Lets jobs attribute
    /// telemetry (e.g. a worker-state table slot) to the worker actually
    /// running them.
    #[must_use]
    pub fn index(&self) -> usize {
        self.me
    }
}

struct Queues<J> {
    injector: Mutex<VecDeque<J>>,
    deques: Vec<Mutex<VecDeque<J>>>,
    /// Jobs created (initial + spawned) and not yet finished.
    pending: AtomicUsize,
}

/// Where [`Queues::next_job`] found a job — feeds the scheduler's steal
/// counter when a recorder is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobSource {
    /// The worker's own deque.
    Local,
    /// The global injector.
    Injector,
    /// Stolen from a sibling's deque.
    Steal,
}

impl<J> Queues<J> {
    /// Next job for worker `me`: own deque (front), injector, then steal
    /// from siblings (back).
    fn next_job(&self, me: usize) -> Option<(J, JobSource)> {
        if let Some(job) = self.deques[me].lock().unwrap().pop_front() {
            return Some((job, JobSource::Local));
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some((job, JobSource::Injector));
        }
        let n = self.deques.len();
        for k in 1..n {
            let victim = (me + k) % n;
            if let Some(job) = self.deques[victim].lock().unwrap().pop_back() {
                return Some((job, JobSource::Steal));
            }
        }
        None
    }
}

/// The number of workers to use when the caller does not pin one:
/// all available cores.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `initial` jobs (plus any jobs they spawn) across `threads`
/// workers, returning every job's result in an **unspecified order**.
///
/// `worker` must be a pure function of the job for campaign determinism;
/// the scheduler guarantees each job runs exactly once.
pub fn execute<J, R, F>(initial: Vec<J>, threads: usize, worker: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J, &Spawner<'_, J>) -> R + Sync,
{
    execute_observed(initial, threads, None, worker)
}

/// [`execute`] with an optional [`Recorder`]: when attached, workers
/// report queue-wait time (volatile spans + a histogram) and steal/job
/// counters into it.
pub fn execute_observed<J, R, F>(
    initial: Vec<J>,
    threads: usize,
    recorder: Option<&Arc<Recorder>>,
    worker: F,
) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J, &Spawner<'_, J>) -> R + Sync,
{
    execute_pulsed(initial, threads, recorder, None, worker)
}

/// [`execute_observed`] with optional live [`SchedGauges`]: when attached,
/// workers additionally maintain the queue-depth/steal/retire counters the
/// pulse heartbeat sampler reads. `None` keeps the hot path free of any
/// telemetry stores.
pub fn execute_pulsed<J, R, F>(
    initial: Vec<J>,
    threads: usize,
    recorder: Option<&Arc<Recorder>>,
    gauges: Option<&SchedGauges>,
    worker: F,
) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J, &Spawner<'_, J>) -> R + Sync,
{
    let threads = threads.max(1);
    let total_hint = initial.len();
    if let Some(g) = gauges {
        for _ in 0..total_hint {
            g.job_queued();
        }
    }
    let queues = Queues {
        pending: AtomicUsize::new(initial.len()),
        injector: Mutex::new(initial.into()),
        deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
    };
    let recorder = recorder.filter(|r| r.is_enabled()).map(Arc::as_ref);
    let results: Mutex<Vec<R>> = Mutex::new(Vec::with_capacity(total_hint));
    if threads == 1 {
        // Degenerate single-worker pool: run inline, no thread spawn.
        run_worker(0, &queues, &results, recorder, gauges, &worker);
    } else {
        std::thread::scope(|scope| {
            for me in 0..threads {
                let queues = &queues;
                let results = &results;
                let worker = &worker;
                scope.spawn(move || run_worker(me, queues, results, recorder, gauges, worker));
            }
        });
    }
    debug_assert_eq!(queues.pending.load(Ordering::SeqCst), 0);
    results.into_inner().unwrap()
}

fn run_worker<J, R, F>(
    me: usize,
    queues: &Queues<J>,
    results: &Mutex<Vec<R>>,
    recorder: Option<&Recorder>,
    gauges: Option<&SchedGauges>,
    worker: &F,
) where
    F: Fn(J, &Spawner<'_, J>) -> R,
{
    let spawner = Spawner {
        me,
        local: &queues.deques[me],
        pending: &queues.pending,
        gauges,
    };
    // Balances `pending` even when a job panics: without it, an unwinding
    // worker would leave `pending > 0` forever and every sibling would spin
    // in the idle branch while `thread::scope` waits to join them. With the
    // guard, siblings drain the remaining jobs and exit, and the scope then
    // propagates the original panic to the caller.
    struct PendingGuard<'a>(&'a AtomicUsize);
    impl Drop for PendingGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let mut idle_spins: u32 = 0;
    // Set while the worker is between jobs; cleared (and reported as
    // queue-wait) when the next job arrives.
    let mut idle_since: Option<(Instant, u64)> = None;
    loop {
        if let Some((job, source)) = queues.next_job(me) {
            idle_spins = 0;
            if let Some(g) = gauges {
                g.job_dequeued();
                if source == JobSource::Steal {
                    g.steal();
                }
            }
            if let Some(rec) = recorder {
                if let Some((idle_start, start_ns)) = idle_since.take() {
                    let waited = idle_start.elapsed().as_nanos() as u64;
                    rec.record_volatile(diode_obs::Phase::QueueWait, start_ns, waited);
                    rec.observe_direct("scheduler.queue_wait_ns", waited);
                }
                rec.count_direct("scheduler.jobs", 1);
                if source == JobSource::Steal {
                    rec.count_direct("scheduler.steals", 1);
                }
            }
            // Decrement only after the result (and any spawned jobs) are
            // published — i.e. when the guard drops — so `pending == 0`
            // really means "all done".
            let _finished = PendingGuard(&queues.pending);
            let result = worker(job, &spawner);
            results.lock().unwrap().push(result);
            if let Some(g) = gauges {
                g.job_done();
            }
            continue;
        }
        if queues.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        if recorder.is_some() && idle_since.is_none() {
            idle_since = Some((
                Instant::now(),
                recorder.map(Recorder::now_ns).unwrap_or_default(),
            ));
        }
        // Another worker still owns in-flight jobs that may spawn more:
        // back off politely instead of hammering the queue locks.
        idle_spins += 1;
        if idle_spins < 16 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_job_exactly_once() {
        let jobs: Vec<u64> = (0..1000).collect();
        let mut out = execute(jobs, 8, |j, _| j);
        out.sort_unstable();
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn spawned_jobs_run_too() {
        // Each root job i spawns i children; children return 1.
        #[derive(Clone, Copy)]
        enum Job {
            Root(u64),
            Child,
        }
        let roots: Vec<Job> = (0..20).map(Job::Root).collect();
        let out = execute(roots, 4, |j, spawner| match j {
            Job::Root(n) => {
                for _ in 0..n {
                    spawner.spawn(Job::Child);
                }
                0u64
            }
            Job::Child => 1,
        });
        let children: u64 = out.iter().sum();
        assert_eq!(children, (0..20).sum::<u64>());
        assert_eq!(out.len(), 20 + 190);
    }

    #[test]
    fn uneven_jobs_spread_across_workers() {
        // One long job plus many short ones: total work should not
        // serialize behind the long job (smoke-tested via wall clock).
        let counter = AtomicU64::new(0);
        let jobs: Vec<u32> = (0..64).collect();
        let out = execute(jobs, 8, |j, _| {
            let spins = if j == 0 { 2_000_000 } else { 10_000 };
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            counter.fetch_add(1, Ordering::Relaxed);
            acc
        });
        assert_eq!(out.len(), 64);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = execute(vec![1, 2, 3], 1, |j, _| j * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u32> = execute(Vec::<u32>::new(), 4, |j, _| j);
        assert!(out.is_empty());
    }

    #[test]
    fn gauges_balance_and_count_retires() {
        let g = SchedGauges::new();
        let out = execute_pulsed(
            (0..100u32).collect(),
            4,
            None,
            Some(&g),
            |j, s: &Spawner<'_, u32>| {
                if j < 10 {
                    s.spawn(j + 1000);
                }
                j
            },
        );
        assert_eq!(out.len(), 110);
        assert_eq!(g.jobs_done(), 110, "every job retires exactly once");
        assert_eq!(g.queued(), 0, "queue gauge balances back to zero");
    }

    #[test]
    fn spawner_reports_worker_index() {
        let out = execute(vec![(), (), ()], 1, |(), s: &Spawner<'_, ()>| s.index());
        assert_eq!(out, vec![0, 0, 0], "inline single worker is index 0");
        let out = execute((0..64).collect::<Vec<u32>>(), 4, |_, s| s.index());
        assert!(out.iter().all(|&i| i < 4));
    }

    #[test]
    fn panicking_job_propagates_instead_of_hanging() {
        // A worker panic must not strand `pending` above zero: the other
        // workers drain the rest of the batch and the panic resurfaces at
        // the `execute` call instead of deadlocking the scope join.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute((0..64u32).collect(), 4, |j, _| {
                assert!(j != 13, "boom");
                j
            })
        }));
        assert!(result.is_err(), "the job's panic must propagate");
    }
}
