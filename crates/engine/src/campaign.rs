//! Campaign-scale orchestration: many applications × seeds in one batch.
//!
//! A [`CampaignSpec`] names the workloads (each a program + format + one
//! or more seed inputs) and how to run them; [`CampaignSpec::run`] fans
//! the work out over the work-stealing scheduler and returns a
//! [`CampaignReport`] whose per-site outcomes are aggregated in
//! **site-label order** — byte-identical to what the sequential fallback
//! produces, regardless of thread count or stealing interleavings.
//!
//! The campaign installs one shared [`SolverCache`] across every worker
//! (unless the caller already installed their own, or disabled sharing),
//! so the repeated φ′∧β queries of enforcement iterations, bug
//! verification, and overlapping experiments are answered without
//! re-blasting; the report surfaces the hit/miss counters.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use diode_core::{analyze_site, analyze_site_with_snapshots, DiodeConfig, ProgramAnalysis};
use diode_core::{identify_target_sites, identify_target_sites_traced, warm_unit_slots};
use diode_core::{test_candidate, TargetSite};
use diode_core::{SiteOutcome, SiteReport, SnapshotCache, SnapshotStats};
use diode_format::FormatDesc;
use diode_lang::Program;
use diode_obs::{
    HeartbeatSample, PulseBus, PulseEvent, SchedGauges, WorkerState, WorkerStateTable,
};
use diode_obs::{PhaseBreakdown, ProvenanceRecord, Recorder};
use diode_solver::{CacheStats, SolveResult, SolverCache};

use crate::scheduler::{self, Spawner};

/// One workload of a campaign: a program with its format description and
/// the seed inputs to analyze it under.
#[derive(Debug, Clone)]
pub struct CampaignApp {
    /// Display name (used in reports and progress events).
    pub name: String,
    /// The application pipeline.
    pub program: Program,
    /// Field map + checksum fixups for the seeds' format.
    pub format: FormatDesc,
    /// Seed inputs; each `(app, seed)` pair is an independent unit.
    pub seeds: Vec<Vec<u8>>,
}

impl CampaignApp {
    /// A single-seed workload.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        program: Program,
        format: FormatDesc,
        seed: Vec<u8>,
    ) -> Self {
        CampaignApp {
            name: name.into(),
            program,
            format,
            seeds: vec![seed],
        }
    }

    /// Adds another seed input.
    #[must_use]
    pub fn with_seed(mut self, seed: Vec<u8>) -> Self {
        self.seeds.push(seed);
        self
    }
}

/// How the campaign executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Fan out over the work-stealing scheduler. `threads: None` uses all
    /// available cores. Falls back to [`ExecutionMode::Sequential`] when
    /// the `parallel` feature is disabled.
    Parallel {
        /// Worker count; `None` = all cores.
        threads: Option<usize>,
    },
    /// The original single-threaded path, in spec order. Kept as the
    /// reference implementation that determinism tests compare against.
    Sequential,
}

impl Default for ExecutionMode {
    fn default() -> Self {
        ExecutionMode::Parallel { threads: None }
    }
}

/// A source of campaign workloads — a forged suite, an on-disk corpus
/// suite, or anything else that can mint fresh [`CampaignApp`]s. The
/// engine stays agnostic about where suites live; implementors (e.g.
/// `diode_synth::ForgedSuite`, `diode_corpus::ReplayableSuite`) plug into
/// [`CampaignSpec::from_corpus`] so stored suites run unchanged through
/// the scheduler.
pub trait CorpusSuite {
    /// Fresh campaign workloads, clonable per run.
    fn campaign_apps(&self) -> Vec<CampaignApp>;
}

/// A batch of workloads plus execution policy.
#[derive(Debug)]
pub struct CampaignSpec {
    /// The workloads.
    pub apps: Vec<CampaignApp>,
    /// Per-site analysis configuration (shared by every job).
    pub config: DiodeConfig,
    /// Parallel or sequential execution.
    pub mode: ExecutionMode,
    /// Install one shared solver-query cache across all jobs. Ignored if
    /// `config.query_cache` is already set (the caller's cache wins).
    pub shared_cache: bool,
    /// Share one prefix-[`SnapshotCache`] across all jobs (same `Arc`
    /// discipline as the solver cache), keyed per `(app, seed, site)` so
    /// enforcement loops resume candidate runs from stored prefixes and
    /// the hit/miss/resume counters aggregate campaign-wide. No effect
    /// when `config.prefix_snapshots` is off.
    pub shared_snapshots: bool,
    /// A caller-provided snapshot cache (e.g. primed from persisted
    /// corpus snapshot metadata). Wins over `shared_snapshots`; still
    /// gated by `config.prefix_snapshots`.
    pub snapshot_cache: Option<Arc<SnapshotCache>>,
    /// How `(app, seed)` units are keyed in the snapshot cache. The
    /// default, [`SnapshotKeys::Index`], keys by position in the spec —
    /// correct whenever the cache lives no longer than one campaign.
    /// [`SnapshotKeys::Content`] keys by a fingerprint of the unit's
    /// program text and seed bytes instead, which is what makes a cache
    /// *shared across campaigns* sound: two jobs holding the same app at
    /// different indices reuse each other's prefixes, while distinct
    /// programs can never collide on an index. Keying is invisible in
    /// the report — outcomes are byte-identical either way.
    pub snapshot_keys: SnapshotKeys,
    /// Re-validate every exposed bug after discovery: re-solve its final
    /// constraint (a guaranteed cache hit when caching is on) and re-run
    /// the triggering input, recording the result per site.
    pub verify_exposed: bool,
    /// Structured-tracing recorder (`diode-obs`). When set and enabled,
    /// every job runs under a recording scope: phase spans, solver
    /// cache attribution, and scheduler queue-wait metrics land in the
    /// recorder, and the report gains a [`PhaseBreakdown`]. Tracing is
    /// passive — outcomes are byte-identical with it on or off.
    pub recorder: Option<Arc<Recorder>>,
    /// Live telemetry (`diode-pulse`). When set, workers mirror progress
    /// into the bounded [`PulseBus`] and a sampler thread publishes
    /// periodic [`HeartbeatSample`]s (per-worker state, queue depth,
    /// cache bytes). Like tracing, publication is passive and
    /// non-blocking: a full subscriber ring counts a drop instead of
    /// stalling a worker, and outcomes are byte-identical with pulse on
    /// or off. `None` leaves the hot path telemetry-free.
    pub pulse: Option<PulseConfig>,
}

/// Policy for deriving the snapshot-cache key of an `(app, seed)` unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotKeys {
    /// Key by `(app index, seed index)` — the historical scheme, right
    /// for a cache scoped to one campaign.
    #[default]
    Index,
    /// Key by a content fingerprint of the unit (program text + seed
    /// bytes), so a cache outliving one campaign (e.g. a resident
    /// daemon's) hands prefixes only to byte-identical units.
    Content,
}

/// Live-telemetry attachment for a campaign: the event bus to publish
/// into plus the heartbeat sampling interval.
#[derive(Debug, Clone)]
pub struct PulseConfig {
    /// The bus progress events and heartbeats are published into.
    /// Subscribe (with a bounded ring) before the campaign starts.
    pub bus: Arc<PulseBus>,
    /// Interval between [`HeartbeatSample`]s. Default 50 ms.
    pub heartbeat: Duration,
}

impl PulseConfig {
    /// Telemetry into `bus` with the default 50 ms heartbeat.
    #[must_use]
    pub fn new(bus: Arc<PulseBus>) -> Self {
        PulseConfig {
            bus,
            heartbeat: Duration::from_millis(50),
        }
    }
}

impl CampaignSpec {
    /// A campaign over `apps` with default policy: parallel on all cores,
    /// shared solver + snapshot caches, bug verification on.
    #[must_use]
    pub fn new(apps: Vec<CampaignApp>) -> Self {
        CampaignSpec {
            apps,
            config: DiodeConfig::default(),
            mode: ExecutionMode::default(),
            shared_cache: true,
            shared_snapshots: true,
            snapshot_cache: None,
            snapshot_keys: SnapshotKeys::default(),
            verify_exposed: true,
            recorder: None,
            pulse: None,
        }
    }

    /// A campaign over a stored or in-memory suite, with the same default
    /// policy as [`CampaignSpec::new`]. This is how corpus suites loaded
    /// from disk replay through the scheduler unchanged.
    #[must_use]
    pub fn from_corpus(suite: &(impl CorpusSuite + ?Sized)) -> Self {
        CampaignSpec::new(suite.campaign_apps())
    }

    /// Runs the campaign without progress reporting.
    #[must_use]
    pub fn run(&self) -> CampaignReport {
        self.run_with_progress(&NoProgress)
    }

    /// Runs the campaign, delivering [`CampaignEvent`]s to `sink` as jobs
    /// progress. Events arrive from worker threads in completion order;
    /// the returned report is deterministic regardless.
    #[must_use]
    pub fn run_with_progress(&self, sink: &dyn ProgressSink) -> CampaignReport {
        let start = Instant::now();
        let (config, cache) = self.effective_config();
        let snapshots = self.effective_snapshots(&config);
        let keys = UnitKeys::new(self);
        let recorder = self.recorder.as_ref().filter(|r| r.is_enabled());
        let pulse = self
            .pulse
            .as_ref()
            .map(|p| PulseRun::new(p, self.effective_threads()));
        let sampler = pulse
            .as_ref()
            .map(|p| p.spawn_sampler(cache.clone(), snapshots.clone()));
        let done = match self.mode {
            ExecutionMode::Sequential => {
                self.run_sequential(&config, snapshots.as_deref(), &keys, sink, pulse.as_ref())
            }
            ExecutionMode::Parallel { threads } => {
                if cfg!(feature = "parallel") {
                    self.run_parallel(
                        &config,
                        snapshots.as_deref(),
                        &keys,
                        sink,
                        threads,
                        pulse.as_ref(),
                    )
                } else {
                    self.run_sequential(&config, snapshots.as_deref(), &keys, sink, pulse.as_ref())
                }
            }
        };
        if let Some(s) = sampler {
            s.stop();
        }
        let (units, jobs) = self.aggregate(done);
        let peak_heap_bytes = units
            .iter()
            .flat_map(|u| &u.sites)
            .map(|s| s.report.peak_heap_bytes)
            .max()
            .unwrap_or(0);
        let report = CampaignReport {
            units,
            cache: cache.as_ref().map(|c| c.stats()),
            snapshots: snapshots.as_ref().map(|c| c.stats()),
            wall_time: start.elapsed(),
            threads: self.effective_threads(),
            jobs,
            peak_heap_bytes,
            phases: recorder.map(|r| PhaseBreakdown::from_trace(&r.trace())),
            provenance: recorder
                .filter(|r| r.audit_enabled())
                .map(|r| r.provenance()),
        };
        if let Some(p) = &pulse {
            // Published after the sampler has been joined, so `finished`
            // is the last event every subscriber sees.
            let (sites, exposed, ..) = report.counts();
            p.bus.publish(&PulseEvent::Finished {
                wall_ns: report.wall_time.as_nanos() as u64,
                sites: sites as u64,
                exposed: exposed as u64,
            });
        }
        sink.on_event(CampaignEvent::Finished {
            wall_time: report.wall_time,
        });
        report
    }

    /// The campaign-wide snapshot cache: the caller's, a fresh shared
    /// one, or none (sharing off or snapshots disabled in the config).
    fn effective_snapshots(&self, config: &DiodeConfig) -> Option<Arc<SnapshotCache>> {
        if !config.prefix_snapshots {
            return None;
        }
        self.snapshot_cache.clone().or_else(|| {
            self.shared_snapshots
                .then(|| Arc::new(SnapshotCache::new()))
        })
    }

    /// The index-based snapshot-cache unit key of one `(app, seed)`
    /// workload (the [`SnapshotKeys::Index`] scheme).
    #[must_use]
    pub fn unit_key(app: usize, seed: usize) -> u64 {
        ((app as u64) << 32) | seed as u64
    }

    /// The content-based snapshot-cache unit key of one `(app, seed)`
    /// workload (the [`SnapshotKeys::Content`] scheme): an FNV-1a
    /// fingerprint of the unit's canonical program text and raw seed
    /// bytes. Stable across processes, suite orderings, and campaign
    /// boundaries — what a resident daemon keys its shared cache by.
    #[must_use]
    pub fn content_unit_key(app: &CampaignApp, seed: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(diode_lang::pretty::program(&app.program).as_bytes());
        // Separator byte so (program "a", seed "b") never collides with
        // (program "ab", empty seed).
        eat(&[0xFF]);
        eat(app.seeds.get(seed).map_or(&[][..], Vec::as_slice));
        h
    }

    fn effective_threads(&self) -> usize {
        match self.mode {
            ExecutionMode::Sequential => 1,
            ExecutionMode::Parallel { threads } => {
                if cfg!(feature = "parallel") {
                    threads.unwrap_or_else(scheduler::default_threads).max(1)
                } else {
                    1
                }
            }
        }
    }

    /// The per-job config: the spec's config with the campaign cache
    /// installed (if sharing is on and the caller didn't bring their own).
    fn effective_config(&self) -> (DiodeConfig, Option<Arc<SolverCache>>) {
        let mut config = self.config.clone();
        if config.query_cache.is_none() && self.shared_cache {
            config.query_cache = Some(Arc::new(SolverCache::new()));
        }
        let cache = config.query_cache.clone();
        (config, cache)
    }

    fn run_parallel(
        &self,
        config: &DiodeConfig,
        snapshots: Option<&SnapshotCache>,
        keys: &UnitKeys,
        sink: &dyn ProgressSink,
        threads: Option<usize>,
        pulse: Option<&PulseRun>,
    ) -> Vec<Done> {
        let threads = threads.unwrap_or_else(scheduler::default_threads).max(1);
        let initial: Vec<Job> = self
            .apps
            .iter()
            .enumerate()
            .flat_map(|(app, a)| (0..a.seeds.len()).map(move |seed| Job::Identify { app, seed }))
            .collect();
        scheduler::execute_pulsed(
            initial,
            threads,
            self.recorder.as_ref(),
            pulse.map(|p| p.gauges.as_ref()),
            |job, spawner: &Spawner<'_, Job>| {
                self.run_job(job, config, snapshots, keys, sink, Some(spawner), pulse)
            },
        )
    }

    fn run_sequential(
        &self,
        config: &DiodeConfig,
        snapshots: Option<&SnapshotCache>,
        keys: &UnitKeys,
        sink: &dyn ProgressSink,
        pulse: Option<&PulseRun>,
    ) -> Vec<Done> {
        let mut done = Vec::new();
        for (app, a) in self.apps.iter().enumerate() {
            for seed in 0..a.seeds.len() {
                let identified = self.run_job(
                    Job::Identify { app, seed },
                    config,
                    snapshots,
                    keys,
                    sink,
                    None,
                    pulse,
                );
                let Done::Identified { ref targets, .. } = identified else {
                    unreachable!("identify job returns Identified");
                };
                let site_jobs: Vec<Job> = targets
                    .iter()
                    .map(|t| Job::Site {
                        app,
                        seed,
                        target: t.clone(),
                    })
                    .collect();
                done.push(identified);
                for job in site_jobs {
                    done.push(self.run_job(job, config, snapshots, keys, sink, None, pulse));
                }
            }
        }
        done
    }

    /// Executes one job. In parallel mode `spawner` is present and
    /// identification pushes per-site jobs onto the worker's own deque; in
    /// sequential mode the caller schedules them in order.
    #[allow(clippy::too_many_arguments)]
    fn run_job(
        &self,
        job: Job,
        config: &DiodeConfig,
        snapshots: Option<&SnapshotCache>,
        keys: &UnitKeys,
        sink: &dyn ProgressSink,
        spawner: Option<&Spawner<'_, Job>>,
        pulse: Option<&PulseRun>,
    ) -> Done {
        // Worker 0 covers the sequential and inline single-thread paths.
        let worker = spawner.map_or(0, Spawner::index);
        match job {
            Job::Identify { app, seed } => {
                let a = &self.apps[app];
                // Install the per-job recording scope (no-op when tracing
                // is off): spans recorded anywhere below — including deep
                // inside interp/solver — attribute to this unit.
                let _scope =
                    diode_obs::job_scope(self.recorder.as_ref(), &a.name, seed as u32, None);
                let _span = diode_obs::span(diode_obs::Phase::Identify);
                sink.on_event(CampaignEvent::UnitStarted { app: &a.name, seed });
                if let Some(p) = pulse {
                    p.workers.set(
                        worker,
                        WorkerState::Unit {
                            app: a.name.clone(),
                            seed: seed as u32,
                        },
                    );
                    p.bus.publish(&PulseEvent::UnitStarted {
                        app: a.name.clone(),
                        seed: seed as u32,
                    });
                }
                let start = Instant::now();
                let targets = if let Some(cache) = snapshots {
                    // One capture pass warms every site's prefix snapshot
                    // before the per-site jobs fan out: stage-2 extraction
                    // and every enforcement candidate then resume instead
                    // of re-executing the shared prefix.
                    let (targets, first_reads) =
                        identify_target_sites_traced(&a.program, &a.seeds[seed], &config.machine);
                    let key = keys.key(app, seed);
                    let slots: Vec<_> = targets.iter().map(|t| cache.slot(key, t.label)).collect();
                    warm_unit_slots(
                        &a.program,
                        &a.seeds[seed],
                        &a.format,
                        &targets,
                        &config.machine,
                        &first_reads,
                        &slots,
                    );
                    targets
                } else {
                    identify_target_sites(&a.program, &a.seeds[seed], &config.machine)
                };
                sink.on_event(CampaignEvent::SitesIdentified {
                    app: &a.name,
                    seed,
                    sites: targets.len(),
                });
                if let Some(spawner) = spawner {
                    for target in &targets {
                        spawner.spawn(Job::Site {
                            app,
                            seed,
                            target: target.clone(),
                        });
                    }
                }
                if let Some(p) = pulse {
                    p.bus.publish(&PulseEvent::SitesIdentified {
                        app: a.name.clone(),
                        seed: seed as u32,
                        sites: targets.len() as u64,
                    });
                    p.workers.set(worker, WorkerState::Idle);
                }
                Done::Identified {
                    app,
                    seed,
                    targets,
                    identify_time: start.elapsed(),
                }
            }
            Job::Site { app, seed, target } => {
                let a = &self.apps[app];
                let _scope = diode_obs::job_scope(
                    self.recorder.as_ref(),
                    &a.name,
                    seed as u32,
                    Some(&target.site),
                );
                if let Some(p) = pulse {
                    p.workers.set(
                        worker,
                        WorkerState::Site {
                            app: a.name.clone(),
                            seed: seed as u32,
                            site: target.site.to_string(),
                        },
                    );
                }
                let slot = snapshots.map(|c| c.slot(keys.key(app, seed), target.label));
                let report = analyze_site_with_snapshots(
                    &a.program,
                    &a.seeds[seed],
                    &a.format,
                    &target,
                    config,
                    slot,
                );
                let verified = self
                    .verify_exposed
                    .then(|| self.verify(&a.program, &report, config))
                    .flatten();
                sink.on_event(CampaignEvent::SiteFinished {
                    app: &a.name,
                    seed,
                    site: &report.site,
                    outcome: &report.outcome,
                    discovery_time: report.discovery_time,
                    cache: config.query_cache.as_ref().map(|c| c.stats()),
                    snapshots: snapshots.map(diode_core::SnapshotCache::stats),
                });
                if let Some(p) = pulse {
                    p.peak_heap
                        .fetch_max(report.peak_heap_bytes, Ordering::Relaxed);
                    p.bus.publish(&PulseEvent::SiteFinished {
                        app: a.name.clone(),
                        seed: seed as u32,
                        site: report.site.clone(),
                        outcome: report.outcome.token(),
                        wall_ns: report.discovery_time.as_nanos() as u64,
                        cache_bytes: config.query_cache.as_ref().map_or(0, |c| c.stats().bytes),
                        snapshot_bytes: snapshots.map_or(0, |c| c.stats().bytes),
                        peak_heap_bytes: report.peak_heap_bytes,
                    });
                    p.workers.set(worker, WorkerState::Idle);
                }
                Done::Site {
                    app,
                    seed,
                    record: Box::new(SiteRecord { report, verified }),
                }
            }
        }
    }

    /// Re-validates an exposed bug: its final constraint must still be
    /// satisfiable (re-issued through the cache — with caching on this is
    /// a guaranteed hit, since the enforcement loop solved the identical
    /// query) and its input must still trigger the overflow.
    fn verify(&self, program: &Program, report: &SiteReport, config: &DiodeConfig) -> Option<bool> {
        let bug = match &report.outcome {
            SiteOutcome::Exposed(bug) => bug,
            _ => return None,
        };
        let _span = diode_obs::span(diode_obs::Phase::Validate);
        let constraint_sat = matches!(
            config.solve_query_for(&bug.constraint, diode_obs::QueryOrigin::Validate),
            SolveResult::Sat(_)
        );
        let still_triggers =
            test_candidate(program, &bug.input, report.label, &config.machine).triggered;
        Some(constraint_sat && still_triggers)
    }

    /// Deterministic aggregation: units in spec order, sites in label
    /// order within each unit.
    fn aggregate(&self, done: Vec<Done>) -> (Vec<UnitReport>, usize) {
        let jobs = done.len();
        let mut units: Vec<Vec<UnitReport>> = self
            .apps
            .iter()
            .map(|a| {
                (0..a.seeds.len())
                    .map(|seed| UnitReport {
                        app: a.name.clone(),
                        seed_index: seed,
                        identify_time: Duration::ZERO,
                        sites: Vec::new(),
                    })
                    .collect()
            })
            .collect();
        for d in done {
            match d {
                Done::Identified {
                    app,
                    seed,
                    identify_time,
                    ..
                } => units[app][seed].identify_time = identify_time,
                Done::Site { app, seed, record } => units[app][seed].sites.push(*record),
            }
        }
        let mut flat = Vec::new();
        for per_app in units {
            for mut unit in per_app {
                unit.sites.sort_by_key(|s| s.report.label);
                flat.push(unit);
            }
        }
        (flat, jobs)
    }
}

/// Per-run pulse state: the bus plus the shared tables the sampler
/// thread reads. Created only when the spec carries a [`PulseConfig`];
/// with no pulse attached the engine never touches any of this.
struct PulseRun {
    bus: Arc<PulseBus>,
    heartbeat: Duration,
    workers: Arc<WorkerStateTable>,
    gauges: Arc<SchedGauges>,
    /// Campaign-wide max of per-site interpreter heap high-water marks,
    /// folded in as site jobs retire; the sampler reads it live.
    peak_heap: Arc<AtomicU64>,
}

impl PulseRun {
    fn new(config: &PulseConfig, threads: usize) -> PulseRun {
        PulseRun {
            bus: Arc::clone(&config.bus),
            heartbeat: config.heartbeat,
            workers: Arc::new(WorkerStateTable::new(threads)),
            gauges: Arc::new(SchedGauges::new()),
            peak_heap: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Starts the heartbeat sampler thread: every `heartbeat` interval it
    /// snapshots worker states, scheduler gauges, and cache byte gauges
    /// into a [`HeartbeatSample`] published on the bus.
    fn spawn_sampler(
        &self,
        cache: Option<Arc<SolverCache>>,
        snapshots: Option<Arc<SnapshotCache>>,
    ) -> SamplerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let bus = Arc::clone(&self.bus);
        let workers = Arc::clone(&self.workers);
        let gauges = Arc::clone(&self.gauges);
        let peak_heap = Arc::clone(&self.peak_heap);
        let interval = self.heartbeat;
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let start = Instant::now();
            let mut seq = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                let worker_states = workers.snapshot();
                let busy = worker_states
                    .iter()
                    .filter(|w| !matches!(w, WorkerState::Idle))
                    .count() as u64;
                let (cache_bytes, cache_entries) = cache.as_ref().map_or((0, 0), |c| {
                    let s = c.stats();
                    (s.bytes, s.entries as u64)
                });
                let (snapshot_bytes, snapshot_entries) = snapshots.as_ref().map_or((0, 0), |c| {
                    let s = c.stats();
                    (s.bytes, s.entries)
                });
                let queued = gauges.queued();
                bus.publish(&PulseEvent::Heartbeat(HeartbeatSample {
                    seq,
                    t_ns: start.elapsed().as_nanos() as u64,
                    workers: worker_states,
                    queued,
                    pending: queued + busy,
                    steals: gauges.steals(),
                    jobs_done: gauges.jobs_done(),
                    cache_bytes,
                    cache_entries,
                    snapshot_bytes,
                    snapshot_entries,
                    interp_peak_heap_bytes: peak_heap.load(Ordering::Relaxed),
                }));
                seq += 1;
                std::thread::sleep(interval);
            }
        });
        SamplerHandle { stop, handle }
    }
}

/// Join handle for the heartbeat sampler thread.
struct SamplerHandle {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl SamplerHandle {
    /// Signals the sampler to stop and waits for its final beat.
    fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

/// Precomputed snapshot-cache keys for every `(app, seed)` unit of one
/// campaign, resolved once per run from the spec's [`SnapshotKeys`] policy
/// so the hot per-job path is an indexed load (content hashing walks the
/// whole program text, which must not happen once per site job).
struct UnitKeys(Vec<Vec<u64>>);

impl UnitKeys {
    fn new(spec: &CampaignSpec) -> Self {
        Self(
            spec.apps
                .iter()
                .enumerate()
                .map(|(app, a)| {
                    (0..a.seeds.len())
                        .map(|seed| match spec.snapshot_keys {
                            SnapshotKeys::Index => CampaignSpec::unit_key(app, seed),
                            SnapshotKeys::Content => CampaignSpec::content_unit_key(a, seed),
                        })
                        .collect()
                })
                .collect(),
        )
    }

    fn key(&self, app: usize, seed: usize) -> u64 {
        self.0[app][seed]
    }
}

enum Job {
    Identify {
        app: usize,
        seed: usize,
    },
    Site {
        app: usize,
        seed: usize,
        target: TargetSite,
    },
}

enum Done {
    Identified {
        app: usize,
        seed: usize,
        targets: Vec<TargetSite>,
        identify_time: Duration,
    },
    Site {
        app: usize,
        seed: usize,
        record: Box<SiteRecord>,
    },
}

/// A per-site analysis outcome plus the campaign's re-validation verdict.
#[derive(Debug)]
pub struct SiteRecord {
    /// The full site report from the Figure 7 analysis.
    pub report: SiteReport,
    /// `Some(true)` if the exposed bug re-validated (constraint still
    /// satisfiable, input still triggers); `None` for non-exposed sites or
    /// when verification is disabled.
    pub verified: Option<bool>,
}

/// Results for one `(app, seed)` unit, sites in site-label order.
#[derive(Debug)]
pub struct UnitReport {
    /// The workload's display name.
    pub app: String,
    /// Index into the workload's seed list.
    pub seed_index: usize,
    /// Stage-1 identification time.
    pub identify_time: Duration,
    /// Per-site records, sorted by site label.
    pub sites: Vec<SiteRecord>,
}

impl UnitReport {
    /// Table 1 counts for this unit: (total, exposed, unsat, prevented).
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut exposed = 0;
        let mut unsat = 0;
        let mut prevented = 0;
        for s in &self.sites {
            match s.report.outcome {
                SiteOutcome::Exposed(_) => exposed += 1,
                SiteOutcome::TargetUnsat => unsat += 1,
                SiteOutcome::Prevented(_) => prevented += 1,
                SiteOutcome::Unknown => {}
            }
        }
        (self.sites.len(), exposed, unsat, prevented)
    }
}

/// Everything a campaign produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// One entry per `(app, seed)` unit, in spec order.
    pub units: Vec<UnitReport>,
    /// Shared-cache counters, when a cache was in play.
    pub cache: Option<CacheStats>,
    /// Prefix-snapshot counters, when a snapshot cache was in play.
    pub snapshots: Option<SnapshotStats>,
    /// End-to-end wall-clock time.
    pub wall_time: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Jobs executed (identification + per-site).
    pub jobs: usize,
    /// Largest interpreter heap high-water mark any single site analysis
    /// reached, in (approximate) bytes. Always collected — the gauge is
    /// a deterministic function of the executed programs, not of timing
    /// or telemetry settings.
    pub peak_heap_bytes: u64,
    /// Per-phase timing summary, when the spec carried an enabled
    /// recorder. Purely additive: outcomes are unaffected by tracing.
    pub phases: Option<PhaseBreakdown>,
    /// Per-site decision provenance, when the spec's recorder was built
    /// with auditing on ([`Recorder::with_audit`]); sorted by
    /// `(app, seed, site)`. Like tracing, purely additive.
    pub provenance: Option<Vec<ProvenanceRecord>>,
}

impl CampaignReport {
    /// Whole-campaign counts: (total, exposed, unsat, prevented).
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        self.units.iter().fold((0, 0, 0, 0), |acc, u| {
            let c = u.counts();
            (acc.0 + c.0, acc.1 + c.1, acc.2 + c.2, acc.3 + c.3)
        })
    }

    /// The unit for an app name's first seed.
    #[must_use]
    pub fn unit(&self, app: &str) -> Option<&UnitReport> {
        self.units.iter().find(|u| u.app == app)
    }

    /// A stable textual fingerprint of every site outcome, for
    /// determinism comparisons across execution modes.
    #[must_use]
    pub fn outcome_fingerprint(&self) -> String {
        let mut out = String::new();
        for u in &self.units {
            for s in &u.sites {
                let o = match &s.report.outcome {
                    SiteOutcome::Exposed(b) => {
                        format!("exposed:{}:{:02x?}", b.enforced, b.input)
                    }
                    SiteOutcome::TargetUnsat => "unsat".to_string(),
                    SiteOutcome::Prevented(r) => format!("prevented:{r:?}"),
                    SiteOutcome::Unknown => "unknown".to_string(),
                };
                out.push_str(&format!(
                    "{}#{}/{} -> {}\n",
                    u.app, u.seed_index, s.report.site, o
                ));
            }
        }
        out
    }
}

/// Progress events, delivered from worker threads as the campaign runs.
#[derive(Debug)]
pub enum CampaignEvent<'a> {
    /// Stage 1 started for a unit.
    UnitStarted {
        /// Workload name.
        app: &'a str,
        /// Seed index.
        seed: usize,
    },
    /// Stage 1 finished; per-site jobs are being scheduled.
    SitesIdentified {
        /// Workload name.
        app: &'a str,
        /// Seed index.
        seed: usize,
        /// Number of target sites found.
        sites: usize,
    },
    /// One site's full Figure 7 analysis finished.
    SiteFinished {
        /// Workload name.
        app: &'a str,
        /// Seed index.
        seed: usize,
        /// Site name (`file@line`).
        site: &'a str,
        /// The classification.
        outcome: &'a SiteOutcome,
        /// Discovery wall-clock for this site.
        discovery_time: Duration,
        /// Live shared solver-cache counters at event time, for on-line
        /// hit-rate display. `None` when no cache is installed.
        cache: Option<CacheStats>,
        /// Live prefix-snapshot counters at event time. `None` when no
        /// snapshot cache is in play.
        snapshots: Option<SnapshotStats>,
    },
    /// The whole campaign finished.
    Finished {
        /// End-to-end wall-clock time.
        wall_time: Duration,
    },
}

/// Consumer of [`CampaignEvent`]s. Implementations must be `Sync`: events
/// arrive concurrently from worker threads.
pub trait ProgressSink: Sync {
    /// Called once per event.
    fn on_event(&self, event: CampaignEvent<'_>);
}

/// Discards all events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProgress;

impl ProgressSink for NoProgress {
    fn on_event(&self, _event: CampaignEvent<'_>) {}
}

/// Drop-in parallel counterpart of [`diode_core::analyze_program`]: same
/// inputs, same `ProgramAnalysis` (site reports in site-label order), with
/// the per-site analyses fanned out over the scheduler. Honors
/// `config.query_cache` if installed; adds none by itself, so results are
/// bit-for-bit those of the sequential path.
#[must_use]
pub fn analyze_program_parallel(
    program: &Program,
    seed: &[u8],
    format: &FormatDesc,
    config: &DiodeConfig,
    threads: Option<usize>,
) -> ProgramAnalysis {
    let start = Instant::now();
    let targets = identify_target_sites(program, seed, &config.machine);
    let threads = threads
        .unwrap_or_else(scheduler::default_threads)
        .max(1)
        .min(targets.len().max(1));
    let mut reports: Vec<(usize, SiteReport)> = scheduler::execute(
        targets.iter().enumerate().collect(),
        threads,
        |(idx, target), _spawner: &Spawner<'_, (usize, &TargetSite)>| {
            (idx, analyze_site(program, seed, format, target, config))
        },
    );
    reports.sort_by_key(|(idx, _)| *idx);
    ProgramAnalysis {
        analysis_time: start.elapsed(),
        sites: reports.into_iter().map(|(_, r)| r).collect(),
    }
}
