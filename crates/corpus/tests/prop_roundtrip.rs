//! Property tests: `save → load` over a real on-disk store preserves
//! program ASTs (via pretty→parse), seed bytes, `FormatDesc`s, and oracle
//! classifications, for arbitrary forge configurations.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use diode_corpus::CorpusStore;
use diode_lang::pretty;
use diode_synth::{forge, SynthConfig};
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per case (removed on success).
fn scratch() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("diode-corpus-prop-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn save_then_load_preserves_everything(
        rng_seed in 0u64..1_000_000,
        apps in 1usize..4,
        depth in 0usize..5,
        checksum: bool,
        blocking: bool,
        seeds_per_app in 1usize..3,
    ) {
        let cfg = SynthConfig {
            apps,
            branch_depth: depth,
            checksum,
            blocking_loops: blocking,
            seeds_per_app,
            rng_seed,
            ..SynthConfig::default()
        };
        let suite = forge(&cfg);
        let dir = scratch();

        let id = {
            let store = CorpusStore::open(&dir).expect("open");
            store.save(&suite.manifest(&cfg)).expect("save")
        };
        // A fresh handle (fresh process in CI): nothing carried over but
        // the directory contents.
        let store = CorpusStore::open(&dir).expect("reopen");
        let loaded = store.load(&id).expect("load");

        prop_assert_eq!(loaded.id(), id.as_str());
        prop_assert_eq!(loaded.config(), &cfg);
        prop_assert_eq!(loaded.suite.apps.len(), suite.apps.len());
        for (orig, back) in suite.apps.iter().zip(&loaded.suite.apps) {
            prop_assert_eq!(&orig.name, &back.name);
            // AST equality through the canonical printer.
            prop_assert_eq!(
                pretty::program(&orig.program),
                pretty::program(&back.program),
                "{}: program AST drifted through the store", orig.name
            );
            prop_assert_eq!(&orig.seeds, &back.seeds, "{}: seeds drifted", orig.name);
            prop_assert_eq!(&orig.format, &back.format, "{}: format drifted", orig.name);
        }
        // Oracle classifications survive exactly.
        prop_assert_eq!(&suite.oracle, loaded.oracle());
        // And the reloaded suite re-manifests to the identical identity.
        prop_assert_eq!(
            loaded.suite.manifest(&cfg).suite_id,
            id
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
