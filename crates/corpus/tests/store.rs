//! Store-level integration: replay determinism, witness persistence,
//! regression detection via `diff`, and incremental growth.

use std::path::PathBuf;

use diode_corpus::{CorpusDiff, CorpusError, CorpusStore};
use diode_engine::{CampaignApp, CampaignSpec, ExecutionMode};
use diode_lang::parse;
use diode_synth::{forge, GroundTruth, SynthConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diode-corpus-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_cfg(rng_seed: u64) -> SynthConfig {
    SynthConfig {
        apps: 3,
        min_sites: 1,
        max_sites: 3,
        rng_seed,
        ..SynthConfig::default()
    }
}

#[test]
fn replay_reproduces_the_saved_scorecard_byte_for_byte() {
    let dir = scratch("replay");
    let store = CorpusStore::open(&dir).unwrap();
    let cfg = small_cfg(0xC0FFEE);
    let saved = store.forge_and_save(&cfg).unwrap();

    // Original run, graded and recorded.
    let (report, card) = saved.replay(ExecutionMode::default());
    assert!(card.is_perfect(), "{:?}", card.mismatches);
    let baseline = saved.witnesses("baseline", &report);
    store.record_witnesses(&baseline).unwrap();

    // "Another process": a fresh store handle loads and replays.
    let store2 = CorpusStore::open(&dir).unwrap();
    let loaded = store2.load(saved.id()).unwrap();
    let (rerun, rerun_card) = loaded.replay(ExecutionMode::default());
    assert_eq!(
        report.outcome_fingerprint(),
        rerun.outcome_fingerprint(),
        "replay outcomes must be byte-identical"
    );

    let recorded = store2.load_witnesses(saved.id(), "baseline").unwrap();
    let fresh = loaded.witnesses("rerun", &rerun);
    // Byte-for-byte: identical canonical scorecards and fingerprints.
    assert_eq!(recorded.scorecard, fresh.scorecard);
    assert_eq!(recorded.fingerprint(), fresh.fingerprint());
    // The summary grades by ScoreCard's exact convention.
    let summary = recorded.scorecard.as_ref().unwrap();
    assert_eq!(summary.recall(), card.recall());
    assert_eq!(summary.precision(), card.precision());
    assert_eq!(summary.is_perfect(), card.is_perfect());
    assert!(rerun_card.is_perfect());
    assert!(CorpusDiff::between(&recorded, &fresh).is_clean());

    // Sequential execution agrees too (same scheduler determinism
    // contract, now across the store boundary).
    let (seq, _) = loaded.replay(ExecutionMode::Sequential);
    assert_eq!(report.outcome_fingerprint(), seq.outcome_fingerprint());
    std::fs::remove_dir_all(&dir).ok();
}

/// Tightens every guard of one exposable planted site below its overflow
/// threshold — the "a later version added a stricter sanity check"
/// regression — and returns the tampered campaign apps.
fn tamper_guards(store: &CorpusStore, id: &str) -> (Vec<CampaignApp>, String) {
    let loaded = store.load(id).unwrap();
    // Pick an exposable, guarded site whose threshold leaves room for a
    // tighter-but-seed-compatible limit (seed driver values are <= 8).
    let (app_name, site) = loaded
        .oracle()
        .apps
        .iter()
        .flat_map(|a| a.sites.iter().map(move |s| (a.app.clone(), s.clone())))
        .find(|(_, s)| {
            s.truth == GroundTruth::Exposable
                && !s.guards.is_empty()
                && s.overflow_threshold.is_some_and(|t| t > 9)
        })
        .expect("suite plants a guarded exposable site with threshold > 9");
    let site_idx: usize = site.fields[0]
        .strip_prefix("/s")
        .and_then(|rest| rest.split('/').next())
        .and_then(|k| k.parse().ok())
        .expect("field paths are /s<k>/f<j>");

    let apps = loaded
        .suite
        .apps
        .iter()
        .map(|app| {
            if app.name != app_name {
                return app.clone();
            }
            let mut text = diode_lang::pretty::program(&app.program);
            for &limit in &site.guards {
                let old = format!("if v{site_idx}_0 > {limit}u32 {{");
                let new = format!("if v{site_idx}_0 > 8u32 {{");
                assert!(text.contains(&old), "guard {old} not found in {}", app.name);
                text = text.replace(&old, &new);
            }
            let program = parse(&text).expect("tampered program parses");
            let mut tampered = CampaignApp::new(
                app.name.clone(),
                program,
                app.format.clone(),
                app.seeds[0].clone(),
            );
            for seed in &app.seeds[1..] {
                tampered = tampered.with_seed(seed.clone());
            }
            tampered
        })
        .collect();
    (apps, site.site)
}

#[test]
fn diff_flags_an_injected_guard_limit_regression() {
    let dir = scratch("diff");
    let store = CorpusStore::open(&dir).unwrap();
    let cfg = small_cfg(0xD1FF);
    let saved = store.forge_and_save(&cfg).unwrap();
    let (report, card) = saved.replay(ExecutionMode::default());
    assert!(card.is_perfect(), "{:?}", card.mismatches);
    store
        .record_witnesses(&saved.witnesses("baseline", &report))
        .unwrap();

    let (tampered_apps, tampered_site) = tamper_guards(&store, saved.id());
    let tampered_report = CampaignSpec::new(tampered_apps).run();
    store
        .record_witnesses(&saved.witnesses("tightened", &tampered_report))
        .unwrap();

    let old = store.load_witnesses(saved.id(), "baseline").unwrap();
    let new = store.load_witnesses(saved.id(), "tightened").unwrap();
    let diff = CorpusDiff::between(&old, &new);
    assert!(!diff.is_clean(), "regression must not diff clean");
    assert!(diff.new_sites.is_empty() && diff.lost_sites.is_empty());
    let changed = diff
        .changed
        .iter()
        .find(|c| c.key.site == tampered_site)
        .unwrap_or_else(|| panic!("{tampered_site} must be flagged: {diff}"));
    assert_eq!(changed.old, "exposed");
    assert!(
        changed.new.starts_with("prevented:"),
        "tightened guard turns the site prevented, got {}",
        changed.new
    );
    // The recorded scorecards disagree as well: the regression lost a
    // true positive.
    assert!(new.scorecard.as_ref().unwrap().recall() < old.scorecard.as_ref().unwrap().recall());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn grow_extends_without_reforging_and_matches_one_shot_forging() {
    let dir = scratch("grow");
    let store = CorpusStore::open(&dir).unwrap();
    let cfg = small_cfg(0x9409).with_apps(2);
    let saved = store.forge_and_save(&cfg).unwrap();

    let grown = store.grow(saved.id(), 2).unwrap();
    assert_ne!(grown.id(), saved.id());
    assert_eq!(grown.config().apps, 4);
    assert_eq!(grown.suite.apps.len(), 4);

    // The grown suite is byte-identical to forging 4 apps in one shot —
    // the old apps were reused, not re-forged, and the new ones joined
    // deterministically.
    let one_shot_cfg = cfg.clone().with_apps(4);
    let one_shot = forge(&one_shot_cfg).manifest(&one_shot_cfg);
    assert_eq!(grown.id(), one_shot.suite_id);

    // The original suite is untouched and both replay perfectly.
    let original = store.load(saved.id()).unwrap();
    assert_eq!(original.suite.apps.len(), 2);
    let (_, small_card) = original.replay(ExecutionMode::default());
    let (_, big_card) = grown.replay(ExecutionMode::default());
    assert!(small_card.is_perfect(), "{:?}", small_card.mismatches);
    assert!(big_card.is_perfect(), "{:?}", big_card.mismatches);
    assert!(big_card.graded > small_card.graded);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_surfaces_typed_errors() {
    let dir = scratch("errors");
    let store = CorpusStore::open(&dir).unwrap();
    assert!(matches!(
        store.load("suite-does-not-exist"),
        Err(CorpusError::UnknownSuite { .. })
    ));
    let cfg = SynthConfig {
        apps: 1,
        min_sites: 1,
        max_sites: 1,
        ..small_cfg(1)
    };
    let saved = store.forge_and_save(&cfg).unwrap();
    assert!(matches!(
        store.load_witnesses(saved.id(), "nope"),
        Err(CorpusError::UnknownWitnesses { .. })
    ));
    let (report, _) = saved.replay(ExecutionMode::default());
    assert!(matches!(
        store.record_witnesses(&saved.witnesses("../evil", &report)),
        Err(CorpusError::BadLabel { .. })
    ));

    // Prefix resolution: unique prefixes resolve, garbage does not.
    let resolved = store.resolve(&saved.id()[..10]).unwrap();
    assert_eq!(resolved, saved.id());
    assert!(store.resolve("zzz").is_err());

    // Flip a stored seed byte: load must fail hash verification.
    let manifest = &saved.manifest;
    let seed_rel = format!("seeds/{}.s0.bin", manifest.apps[0].name);
    let seed_path = store.suite_dir(saved.id()).join(seed_rel);
    let mut bytes = std::fs::read(&seed_path).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&seed_path, bytes).unwrap();
    assert!(matches!(
        store.load(saved.id()),
        Err(CorpusError::Manifest(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_metadata_roundtrips_and_primes_replays() {
    let dir = scratch("snapmeta");
    let store = CorpusStore::open(&dir).unwrap();
    let saved = store.forge_and_save(&small_cfg(0xBEEF)).unwrap();

    // Nothing recorded yet.
    assert!(store.load_snapshots(saved.id()).unwrap().is_none());

    let (report, card) = saved.replay(ExecutionMode::default());
    assert!(card.is_perfect());
    let meta = saved.snapshot_meta(&report);
    assert!(
        !meta.is_empty(),
        "default replay runs with prefix snapshots on"
    );
    assert_eq!(meta.sites.len(), saved.suite.total_sites());
    store.record_snapshots(&meta).unwrap().expect("written");

    // Round-trip through disk.
    let loaded = store.load_snapshots(saved.id()).unwrap().expect("recorded");
    assert_eq!(loaded, meta);

    // A primed replay skips the probe states and stays byte-identical.
    let (primed_report, primed_card) = saved.replay_primed(ExecutionMode::default(), &loaded);
    assert_eq!(
        report.outcome_fingerprint(),
        primed_report.outcome_fingerprint(),
        "priming is a scheduling hint, never an input"
    );
    assert_eq!(card.recall(), primed_card.recall());
    let stats = primed_report.snapshots.expect("snapshots on");
    assert!(stats.resumes >= 1, "{stats:?}");

    // The refreshed metadata matches what the first run derived.
    assert_eq!(saved.snapshot_meta(&primed_report), meta);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn audit_records_persist_and_roundtrip_byte_for_byte() {
    let dir = scratch("audit");
    let store = CorpusStore::open(&dir).unwrap();
    let saved = store.forge_and_save(&small_cfg(0xD10DE)).unwrap();

    // Nothing recorded yet; an unaudited replay leaves no provenance.
    assert!(store.load_audit(saved.id(), "baseline").unwrap().is_none());
    assert!(store.audit_labels(saved.id()).unwrap().is_empty());
    let (plain, _) = saved.replay(ExecutionMode::default());
    assert!(plain.provenance.is_none());
    assert!(saved.audit("baseline", &plain).is_none());

    // An audited replay yields one record per site, outcomes unchanged.
    let (report, card) = saved.replay_audited(ExecutionMode::default());
    assert!(card.is_perfect(), "{:?}", card.mismatches);
    assert_eq!(
        plain.outcome_fingerprint(),
        report.outcome_fingerprint(),
        "auditing must be passive"
    );
    let set = saved.audit("baseline", &report).expect("audited run");
    assert_eq!(set.records.len(), saved.suite.total_sites());
    store.record_audit(&set).unwrap();

    // "Another process": a fresh handle reads the same canonical bytes.
    let store2 = CorpusStore::open(&dir).unwrap();
    assert_eq!(store2.audit_labels(saved.id()).unwrap(), vec!["baseline"]);
    let loaded = store2
        .load_audit(saved.id(), "baseline")
        .unwrap()
        .expect("recorded");
    // Disk holds the canonical form (advisory cache annotations are
    // in-memory only), so canonical bytes are the identity contract.
    assert_eq!(loaded.records.len(), set.records.len());
    assert_eq!(loaded.canonical(), set.canonical());

    // Re-auditing drifts nowhere: same suite, same derivations.
    let (rerun, _) = saved.replay_audited(ExecutionMode::Sequential);
    let rerun_set = saved.audit("rerun", &rerun).expect("audited run");
    let drift = diode_corpus::DerivationDrift::between(&loaded, &rerun_set);
    assert!(drift.is_clean(), "{drift}");
    assert_eq!(drift.compared, set.records.len());
    std::fs::remove_dir_all(&dir).ok();
}
