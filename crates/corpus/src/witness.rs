//! Witnesses and diffs: the replayable record of what a campaign found.
//!
//! A [`WitnessSet`] freezes one campaign run over a stored suite — every
//! site's canonical outcome token, enforcement count, and triggering
//! input — plus the graded [`ScoreCard`] in canonical serialized form.
//! Two runs of the same suite can then be compared **byte-for-byte**
//! (`scorecard` + `fingerprint` equality) or structurally via
//! [`CorpusDiff`], which classifies per-site drift into *new*, *lost*,
//! and *changed* sites — the regression-detection primitive the paper's
//! longitudinal workflow needs (rerun a suite after a guard was
//! tightened, and the formerly exposable site shows up as changed).

use std::collections::BTreeMap;
use std::fmt;

use diode_core::SiteOutcome;
use diode_engine::CampaignReport;
use diode_synth::{score, Fnv64, Mismatch, ScoreCard, SynthOracle};

/// Canonical serialized image of a [`ScoreCard`]. Equality of two
/// summaries is equality of their canonical JSON bytes — "byte-for-byte"
/// is literal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScoreSummary {
    /// Planted (site, unit) pairs graded.
    pub graded: usize,
    /// Exposable sites reported exposed.
    pub true_pos: usize,
    /// Non-exposable sites reported exposed.
    pub false_pos: usize,
    /// Exposable sites not reported exposed.
    pub false_neg: usize,
    /// Non-exposable sites not reported exposed.
    pub true_neg: usize,
    /// Sites whose three-way classification matches the oracle exactly.
    pub exact: usize,
    /// Rendered three-way disagreements.
    pub mismatches: Vec<String>,
}

impl ScoreSummary {
    /// Summarizes a graded score card.
    #[must_use]
    pub fn from_card(card: &ScoreCard) -> ScoreSummary {
        ScoreSummary {
            graded: card.graded,
            true_pos: card.true_pos,
            false_pos: card.false_pos,
            false_neg: card.false_neg,
            true_neg: card.true_neg,
            exact: card.exact,
            mismatches: card.mismatches.iter().map(Mismatch::to_string).collect(),
        }
    }

    /// `TP / (TP + FN)`, by [`ScoreCard::ratio`]'s convention.
    #[must_use]
    pub fn recall(&self) -> f64 {
        ScoreCard::ratio(self.true_pos, self.true_pos + self.false_neg)
    }

    /// `TP / (TP + FP)`, by [`ScoreCard::ratio`]'s convention.
    #[must_use]
    pub fn precision(&self) -> f64 {
        ScoreCard::ratio(self.true_pos, self.true_pos + self.false_pos)
    }

    /// True when every graded site matched the oracle exactly.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        self.graded > 0 && self.exact == self.graded && self.mismatches.is_empty()
    }
}

/// The frozen outcome of one site in one campaign unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteWitness {
    /// Application name.
    pub app: String,
    /// Seed index of the unit.
    pub seed_index: usize,
    /// Site name.
    pub site: String,
    /// Canonical outcome token (`exposed`, `target-unsat`,
    /// `prevented:constraint-unsat:N`, `prevented:satisfies-phi:N`,
    /// `prevented:budget`, `unknown`).
    pub outcome: String,
    /// Branches enforced before exposure (exposed sites only).
    pub enforced: Option<usize>,
    /// Hex dump of the triggering input (exposed sites only).
    pub input_hex: Option<String>,
    /// Error classification of the triggering run (exposed sites only).
    pub error_type: Option<String>,
    /// The campaign's re-validation verdict, when it ran.
    pub verified: Option<bool>,
}

impl SiteWitness {
    /// The identity this witness is keyed by in diffs.
    #[must_use]
    pub fn key(&self) -> SiteKey {
        SiteKey {
            app: self.app.clone(),
            seed_index: self.seed_index,
            site: self.site.clone(),
        }
    }

    /// The comparable payload: everything recorded about the finding —
    /// outcome token, enforcement count, triggering input, error class,
    /// and re-validation verdict. Two witnesses with equal payloads are
    /// "the same finding"; drift in *any* recorded field makes a diff
    /// non-clean.
    #[must_use]
    pub fn payload(
        &self,
    ) -> (
        &str,
        Option<usize>,
        Option<&str>,
        Option<&str>,
        Option<bool>,
    ) {
        (
            &self.outcome,
            self.enforced,
            self.input_hex.as_deref(),
            self.error_type.as_deref(),
            self.verified,
        )
    }
}

/// Canonical token for a site outcome (delegates to
/// [`SiteOutcome::token`], the single source of the token grammar —
/// provenance verdict events use the same strings).
#[must_use]
pub fn outcome_token(outcome: &SiteOutcome) -> String {
    outcome.token()
}

/// One recorded campaign run over a stored suite.
#[derive(Debug, Clone, PartialEq)]
pub struct WitnessSet {
    /// The suite this run replayed.
    pub suite_id: String,
    /// The run's label within `witnesses/` (e.g. `baseline`).
    pub label: String,
    /// Worker threads the run used.
    pub threads: usize,
    /// The graded score, when an oracle was available.
    pub scorecard: Option<ScoreSummary>,
    /// Per-site witnesses, in deterministic report order.
    pub sites: Vec<SiteWitness>,
}

impl WitnessSet {
    /// Freezes a campaign report (grading it against `oracle` when given).
    #[must_use]
    pub fn from_report(
        suite_id: impl Into<String>,
        label: impl Into<String>,
        report: &CampaignReport,
        oracle: Option<&SynthOracle>,
    ) -> WitnessSet {
        let mut sites = Vec::new();
        for unit in &report.units {
            for s in &unit.sites {
                let bug = s.report.outcome.bug();
                sites.push(SiteWitness {
                    app: unit.app.clone(),
                    seed_index: unit.seed_index,
                    site: s.report.site.clone(),
                    outcome: outcome_token(&s.report.outcome),
                    enforced: bug.map(|b| b.enforced),
                    input_hex: bug.map(|b| hex(&b.input)),
                    error_type: bug.map(|b| b.error_type.clone()),
                    verified: s.verified,
                });
            }
        }
        WitnessSet {
            suite_id: suite_id.into(),
            label: label.into(),
            threads: report.threads,
            scorecard: oracle.map(|o| ScoreSummary::from_card(&score(report, o))),
            sites,
        }
    }

    /// A stable fingerprint over every site's payload — equal iff the two
    /// runs produced identical findings. Uses the same length-delimited
    /// FNV-1a ([`Fnv64`]) as app hashes and suite IDs.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut h = Fnv64::new();
        for s in &self.sites {
            h.str(&s.app);
            h.bytes(&(s.seed_index as u64).to_le_bytes());
            h.str(&s.site);
            h.str(&s.outcome);
            h.str(&s.enforced.map_or(String::new(), |e| e.to_string()));
            h.str(s.input_hex.as_deref().unwrap_or(""));
            h.str(s.error_type.as_deref().unwrap_or(""));
            h.str(&s.verified.map_or(String::new(), |v| v.to_string()));
        }
        h.hex()
    }
}

/// Identity of one (app, seed, site) record across runs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SiteKey {
    /// Application name.
    pub app: String,
    /// Seed index.
    pub seed_index: usize,
    /// Site name.
    pub site: String,
}

impl fmt::Display for SiteKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}/{}", self.app, self.seed_index, self.site)
    }
}

/// One site whose finding drifted between two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangedSite {
    /// The site's identity.
    pub key: SiteKey,
    /// Outcome token in the old run.
    pub old: String,
    /// Outcome token in the new run.
    pub new: String,
}

/// The structural difference between two recorded runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusDiff {
    /// Sites present only in the new run (e.g. a grown suite).
    pub new_sites: Vec<SiteKey>,
    /// Sites present only in the old run.
    pub lost_sites: Vec<SiteKey>,
    /// Sites present in both with different findings.
    pub changed: Vec<ChangedSite>,
    /// Sites present in both with byte-identical findings.
    pub unchanged: usize,
}

impl CorpusDiff {
    /// Diffs two witness sets, keyed by `(app, seed, site)`.
    #[must_use]
    pub fn between(old: &WitnessSet, new: &WitnessSet) -> CorpusDiff {
        let old_map: BTreeMap<SiteKey, &SiteWitness> =
            old.sites.iter().map(|s| (s.key(), s)).collect();
        let new_map: BTreeMap<SiteKey, &SiteWitness> =
            new.sites.iter().map(|s| (s.key(), s)).collect();
        let mut diff = CorpusDiff::default();
        for (key, o) in &old_map {
            match new_map.get(key) {
                None => diff.lost_sites.push(key.clone()),
                Some(n) if n.payload() != o.payload() => diff.changed.push(ChangedSite {
                    key: key.clone(),
                    old: o.outcome.clone(),
                    new: n.outcome.clone(),
                }),
                Some(_) => diff.unchanged += 1,
            }
        }
        for key in new_map.keys() {
            if !old_map.contains_key(key) {
                diff.new_sites.push(key.clone());
            }
        }
        diff
    }

    /// True when the runs found exactly the same things (growth counts as
    /// drift: new sites make a diff non-clean, so replays gate strictly).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.new_sites.is_empty() && self.lost_sites.is_empty() && self.changed.is_empty()
    }
}

impl fmt::Display for CorpusDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} unchanged, {} changed, {} new, {} lost",
            self.unchanged,
            self.changed.len(),
            self.new_sites.len(),
            self.lost_sites.len()
        )?;
        for c in &self.changed {
            writeln!(f, "  CHANGED {}: {} -> {}", c.key, c.old, c.new)?;
        }
        for k in &self.new_sites {
            writeln!(f, "  NEW     {k}")?;
        }
        for k in &self.lost_sites {
            writeln!(f, "  LOST    {k}")?;
        }
        Ok(())
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = fmt::Write::write_fmt(&mut out, format_args!("{b:02x}"));
    }
    out
}
