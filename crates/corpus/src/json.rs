//! Self-contained JSON reading and writing for corpus files.
//!
//! The workspace builds offline (no serde), so the corpus carries its own
//! small JSON codec. Unlike the write-only emitter in `diode-bench`, this
//! one round-trips: [`Json::parse`] accepts everything [`Json`]'s
//! `Display` produces (and standard JSON generally). Non-negative integer
//! literals parse into [`Json::UInt`], so `u64` payloads — RNG seeds,
//! guard limits — survive exactly, never through an `f64`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// A parse failure at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was expected or found.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// An empty object builder.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (panics on non-objects — builder misuse).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on non-object"),
        }
        self
    }

    /// Member of an object by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Exact unsigned payload ([`Json::UInt`] or an integral `Num`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n < 1.8446744073709552e19 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// Numeric payload as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// Boolean payload.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns the first [`JsonError`] with its byte offset.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n:?}")
                }
            }
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            at: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to the next quote/escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v << 4 | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ascii");
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(JsonError {
                at: start,
                reason: format!("invalid number {text:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_structures() {
        let doc = Json::obj()
            .field("name", "a\"b\\c\nd")
            .field("big", 0xFFFF_FFFF_FFFF_FFFFu64)
            .field("frac", 1.5f64)
            .field("neg", -3.0f64)
            .field("ok", true)
            .field("none", Json::Null)
            .field("list", vec![1u64, 2, 3])
            .field("nested", Json::obj().field("k", "v"));
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.to_string(), text, "printing is canonical");
    }

    #[test]
    fn u64_values_survive_exactly() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v, Json::UInt(u64::MAX));
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn accepts_standard_json_flourishes() {
        let v =
            Json::parse("  { \"a\" : [ 1 , 2.5e1 , -4 ] , \"s\" : \"x\\u0041\\ud83d\\ude00/\" }  ")
                .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(25.0)
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("xA😀/"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "nul",
            "{",
            "[1,",
            "{\"a\":}",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "--1",
            "\"\\q\"",
            "01e",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse("[1, x]").unwrap_err();
        assert_eq!(err.at, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
