//! Persisted prefix-snapshot metadata: where each site's candidate
//! executions diverge, and how much of the last campaign resumed.
//!
//! A [`SnapshotMetaSet`] freezes the snapshot telemetry of one campaign
//! over a stored suite — per site: the first-divergent-read step (the
//! prefix-snapshot boundary), the divergent byte set, and the
//! candidate/resume counts. It lives in `snapshots.json` next to
//! `witnesses/`, so a later `corpus replay` can prime its campaign's
//! [`SnapshotCache`](diode_core::SnapshotCache) with the recorded
//! boundaries and skip straight to the recorded divergent suffixes, and
//! so boundary drift (a program change moving a site's divergence point)
//! is a diffable, versioned fact rather than a re-derived one.

use diode_core::SnapshotCache;
use diode_engine::{CampaignReport, CampaignSpec};

use crate::store::ReplayableSuite;

/// One site's recorded snapshot telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Application name.
    pub app: String,
    /// Seed index of the unit.
    pub seed_index: usize,
    /// Site name.
    pub site: String,
    /// Step count of the first divergent-byte read on the seed path
    /// (`None`: the site's candidates never read a divergent byte).
    pub first_divergent_step: Option<u64>,
    /// Sorted input offsets candidate inputs may differ at.
    pub divergent_bytes: Vec<u32>,
    /// Candidate inputs executed for the site in the recorded run.
    pub candidates: u64,
    /// Candidate executions resumed from the prefix snapshot.
    pub resumed: u64,
}

/// The snapshot metadata of one recorded campaign run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotMetaSet {
    /// The suite the campaign ran over.
    pub suite_id: String,
    /// Per-site records, in deterministic report order.
    pub sites: Vec<SnapshotMeta>,
}

impl SnapshotMetaSet {
    /// Extracts the snapshot telemetry of a campaign report. Sites
    /// analyzed with snapshots disabled contribute nothing; an empty set
    /// means the campaign ran snapshot-free.
    #[must_use]
    pub fn from_report(suite_id: impl Into<String>, report: &CampaignReport) -> SnapshotMetaSet {
        let mut sites = Vec::new();
        for unit in &report.units {
            for s in &unit.sites {
                let Some(info) = &s.report.snapshot else {
                    continue;
                };
                sites.push(SnapshotMeta {
                    app: unit.app.clone(),
                    seed_index: unit.seed_index,
                    site: s.report.site.clone(),
                    first_divergent_step: info.first_divergent_step,
                    divergent_bytes: info.divergent_bytes.clone(),
                    candidates: info.candidates,
                    resumed: info.resumed,
                });
            }
        }
        SnapshotMetaSet {
            suite_id: suite_id.into(),
            sites,
        }
    }

    /// True when no site recorded any telemetry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Builds a [`SnapshotCache`] primed with every recorded divergence
    /// boundary, resolving `(app, seed, site)` records to the engine's
    /// `(unit key, site label)` slots through the suite's programs. The
    /// campaign's identify-time warm-up then captures at the recorded
    /// steps without re-deriving them, and records whose sites no longer
    /// exist in the suite are ignored (they will show up in the witness
    /// diff anyway).
    #[must_use]
    pub fn primed_cache(&self, suite: &ReplayableSuite) -> SnapshotCache {
        let cache = SnapshotCache::new();
        for meta in &self.sites {
            let Some(step) = meta.first_divergent_step else {
                continue;
            };
            let Some(app_idx) = suite.suite.apps.iter().position(|a| a.name == meta.app) else {
                continue;
            };
            let label = suite.suite.apps[app_idx]
                .program
                .alloc_sites()
                .into_iter()
                .find(|(_, name)| **name == *meta.site)
                .map(|(label, _)| label);
            if let Some(label) = label {
                cache.prime(
                    CampaignSpec::unit_key(app_idx, meta.seed_index),
                    label,
                    step,
                );
            }
        }
        cache
    }
}
