//! Persisted decision provenance: `audit/<label>/` next to `witnesses/`.
//!
//! An [`AuditSet`] freezes one audited campaign run's per-site
//! [`ProvenanceRecord`]s — the full derivation of every verdict — so a
//! later `corpus diff` can flag a site whose verdict is *unchanged* but
//! whose derivation drifted (different enforcement path, different
//! solver answers along the way). That distinction is invisible to the
//! witness diff, which only compares what was found, never how.
//!
//! On disk each record is its own document, `audit/<label>/<site>.json`
//! (site keys are sanitised into file stems), carrying the full event
//! list including advisory cache-hit annotations. Drift comparison uses
//! [`ProvenanceRecord::canonical`], which strips exactly those advisory
//! fields, so two runs of the same spec compare byte-identical
//! regardless of thread count or cache warmth.

use std::collections::BTreeMap;
use std::fmt;

use diode_engine::CampaignReport;
use diode_obs::{
    canonical_record_set, EnforceAction, ProvenanceEvent, ProvenanceRecord, QueryOrigin,
    QueryVerdict, AUDIT_SCHEMA_VERSION,
};

use crate::json::Json;
use crate::witness::SiteKey;
use crate::CorpusError;

/// The decision-provenance records of one audited campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditSet {
    /// The suite the audited run replayed.
    pub suite_id: String,
    /// The run's label (shared with its witness set).
    pub label: String,
    /// Per-site derivations, sorted by `(app, seed, site)`.
    pub records: Vec<ProvenanceRecord>,
}

impl AuditSet {
    /// Freezes a report's provenance, if the campaign recorded any
    /// (`None` when the run was not audited).
    #[must_use]
    pub fn from_report(
        suite_id: impl Into<String>,
        label: impl Into<String>,
        report: &CampaignReport,
    ) -> Option<AuditSet> {
        report.provenance.as_ref().map(|records| {
            let mut records = records.clone();
            sort_records(&mut records);
            AuditSet {
                suite_id: suite_id.into(),
                label: label.into(),
                records,
            }
        })
    }

    /// Canonical serialisation of the whole set (one canonical JSON
    /// document per line, sorted) — the byte-identity form.
    #[must_use]
    pub fn canonical(&self) -> String {
        canonical_record_set(&self.records)
    }

    /// Records keyed by site identity.
    #[must_use]
    pub fn by_key(&self) -> BTreeMap<SiteKey, &ProvenanceRecord> {
        self.records.iter().map(|r| (record_key(r), r)).collect()
    }

    /// The record for one site, if present.
    #[must_use]
    pub fn record_for(&self, key: &SiteKey) -> Option<&ProvenanceRecord> {
        self.records.iter().find(|r| &record_key(r) == key)
    }
}

/// Site identity of a provenance record, in witness-diff key space.
#[must_use]
pub fn record_key(r: &ProvenanceRecord) -> SiteKey {
    SiteKey {
        app: r.app.clone(),
        seed_index: r.seed as usize,
        site: r.site.clone(),
    }
}

fn sort_records(records: &mut [ProvenanceRecord]) {
    records.sort_by(|a, b| (&a.app, a.seed, &a.site).cmp(&(&b.app, b.seed, &b.site)));
}

/// File stem for one record inside `audit/<label>/`: the site key with
/// every non-`[A-Za-z0-9._-]` character mapped to `_` (site names carry
/// `@`, which is not a safe file stem everywhere).
#[must_use]
pub fn record_file(r: &ProvenanceRecord) -> String {
    let raw = format!("{}.s{}.{}", r.app, r.seed, r.site);
    let mut stem = String::with_capacity(raw.len());
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
            stem.push(c);
        } else {
            stem.push('_');
        }
    }
    format!("{stem}.json")
}

/// Derivation drift between two audited runs of the same suite: sites
/// whose *verdict token is unchanged* but whose canonical derivation
/// differs — the regression class the witness diff cannot see.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DerivationDrift {
    /// Same verdict, different derivation.
    pub drifted: Vec<SiteKey>,
    /// Different verdict (already visible to the witness diff; counted,
    /// not re-reported).
    pub verdict_changed: usize,
    /// Sites with a record in both runs.
    pub compared: usize,
}

impl DerivationDrift {
    /// Compares two audit sets by site key.
    #[must_use]
    pub fn between(old: &AuditSet, new: &AuditSet) -> DerivationDrift {
        let old_map = old.by_key();
        let new_map = new.by_key();
        let mut drift = DerivationDrift::default();
        for (key, o) in &old_map {
            let Some(n) = new_map.get(key) else { continue };
            drift.compared += 1;
            if o.canonical() == n.canonical() {
                continue;
            }
            let same_verdict = match (o.verdict(), n.verdict()) {
                (Some((ot, _, _)), Some((nt, _, _))) => ot == nt,
                (None, None) => true,
                _ => false,
            };
            if same_verdict {
                drift.drifted.push(key.clone());
            } else {
                drift.verdict_changed += 1;
            }
        }
        drift
    }

    /// True when no unchanged-verdict site changed its derivation.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.drifted.is_empty()
    }
}

impl fmt::Display for DerivationDrift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} derivation(s) compared, {} drifted, {} with changed verdicts",
            self.compared,
            self.drifted.len(),
            self.verdict_changed
        )?;
        for k in &self.drifted {
            writeln!(f, "  DERIV   {k}: verdict unchanged, derivation changed")?;
        }
        Ok(())
    }
}

/// Serialises a record as a corpus [`Json`] document (full form, with
/// advisory cache annotations).
#[must_use]
pub fn record_json(r: &ProvenanceRecord) -> Json {
    Json::parse(&r.to_json()).expect("provenance records serialise as valid JSON")
}

/// Serialises a record in canonical form — the byte-identical-across-
/// thread-counts shape every persisted audit artifact uses. Cache-hit
/// annotations are omitted: whether a query hit the *shared* cache
/// depends on scheduling, not on the decision being derived.
#[must_use]
pub fn record_json_canonical(r: &ProvenanceRecord) -> Json {
    Json::parse(&r.canonical()).expect("provenance records serialise as valid JSON")
}

fn corrupt(doc: &str, reason: impl Into<String>) -> CorpusError {
    CorpusError::Corrupt {
        doc: doc.to_string(),
        reason: reason.into(),
    }
}

fn u32_field(doc: &Json, key: &str) -> Result<u32, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| format!("missing or non-u32 field {key:?}"))
}

fn str_field<'j>(doc: &'j Json, key: &str) -> Result<&'j str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn event_from_json(doc: &Json) -> Result<ProvenanceEvent, String> {
    match str_field(doc, "type")? {
        "extraction" => {
            let items = doc
                .get("relevant_bytes")
                .and_then(Json::as_arr)
                .ok_or("extraction event missing relevant_bytes array")?;
            let mut relevant_bytes = Vec::with_capacity(items.len());
            for item in items {
                relevant_bytes.push(
                    item.as_u64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or("non-u32 entry in relevant_bytes")?,
                );
            }
            Ok(ProvenanceEvent::Extraction {
                relevant_bytes,
                total_relevant: u32_field(doc, "total_relevant")?,
                phi_len: u32_field(doc, "phi")?,
                boundary: u32_field(doc, "boundary")?,
                resumed: doc
                    .get("resumed")
                    .and_then(Json::as_bool)
                    .ok_or("missing or non-bool field \"resumed\"")?,
            })
        }
        "query" => Ok(ProvenanceEvent::Query {
            origin: QueryOrigin::parse(str_field(doc, "origin")?).ok_or("unknown query origin")?,
            fingerprint: str_field(doc, "fingerprint")?.to_string(),
            verdict: QueryVerdict::parse(str_field(doc, "verdict")?)
                .ok_or("unknown query verdict")?,
            cache_hit: doc.get("cache_hit").and_then(Json::as_bool),
        }),
        "enforce" => Ok(ProvenanceEvent::Enforce {
            iteration: u32_field(doc, "iteration")?,
            condition: u32_field(doc, "condition")?,
            label: u32_field(doc, "label")?,
            action: EnforceAction::parse(str_field(doc, "action")?)
                .ok_or("unknown enforce action")?,
        }),
        "budget" => Ok(ProvenanceEvent::Budget {
            iteration: u32_field(doc, "iteration")?,
        }),
        "verdict" => Ok(ProvenanceEvent::Verdict {
            outcome: str_field(doc, "outcome")?.to_string(),
            enforced: u32_field(doc, "enforced")?,
            witness: doc
                .get("witness")
                .and_then(Json::as_str)
                .map(str::to_string),
        }),
        other => Err(format!("unknown event type {other:?}")),
    }
}

/// Parses a provenance record back from a corpus [`Json`] document,
/// rejecting unknown schema versions.
///
/// # Errors
///
/// [`CorpusError::Corrupt`] naming `doc_name` on any structural problem.
pub fn record_from_json(doc_name: &str, doc: &Json) -> Result<ProvenanceRecord, CorpusError> {
    let v = doc
        .get("v")
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt(doc_name, "missing schema version"))?;
    if v != u64::from(AUDIT_SCHEMA_VERSION) {
        return Err(corrupt(
            doc_name,
            format!("unsupported audit schema version {v}"),
        ));
    }
    let events_json = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or_else(|| corrupt(doc_name, "missing events array"))?;
    let mut events = Vec::with_capacity(events_json.len());
    for (i, e) in events_json.iter().enumerate() {
        events.push(
            event_from_json(e)
                .map_err(|reason| corrupt(doc_name, format!("event {i}: {reason}")))?,
        );
    }
    Ok(ProvenanceRecord {
        app: str_field(doc, "app")
            .map_err(|r| corrupt(doc_name, r))?
            .to_string(),
        seed: u32_field(doc, "seed").map_err(|r| corrupt(doc_name, r))?,
        site: str_field(doc, "site")
            .map_err(|r| corrupt(doc_name, r))?
            .to_string(),
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_obs::fnv64_hex;

    fn record(site: &str, outcome: &str) -> ProvenanceRecord {
        ProvenanceRecord {
            app: "app-0".to_string(),
            seed: 1,
            site: site.to_string(),
            events: vec![
                ProvenanceEvent::Extraction {
                    relevant_bytes: vec![0, 3],
                    total_relevant: 2,
                    phi_len: 1,
                    boundary: 4,
                    resumed: true,
                },
                ProvenanceEvent::Query {
                    origin: QueryOrigin::Beta,
                    fingerprint: "ff00".to_string(),
                    verdict: QueryVerdict::Sat,
                    cache_hit: Some(true),
                },
                ProvenanceEvent::Verdict {
                    outcome: outcome.to_string(),
                    enforced: 0,
                    witness: Some(fnv64_hex(b"xy")),
                },
            ],
        }
    }

    #[test]
    fn records_roundtrip_through_corpus_json() {
        let r = record("b0@7", "exposed");
        let doc = record_json(&r);
        let back = record_from_json("t", &doc).unwrap();
        assert_eq!(back, r, "cache_hit and all payloads survive");
    }

    #[test]
    fn parse_rejects_future_schema_and_garbage_events() {
        let mut doc = record_json(&record("s", "exposed"));
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::UInt(99);
        }
        assert!(matches!(
            record_from_json("t", &doc),
            Err(CorpusError::Corrupt { .. })
        ));
        let bad = Json::parse(
            "{\"v\":1,\"app\":\"a\",\"seed\":0,\"site\":\"s\",\
             \"events\":[{\"type\":\"warp\"}]}",
        )
        .unwrap();
        let err = record_from_json("t", &bad).unwrap_err();
        assert!(err.to_string().contains("warp"));
    }

    #[test]
    fn record_file_sanitises_site_names() {
        let name = record_file(&record("b0@7", "exposed"));
        assert_eq!(name, "app-0.s1.b0_7.json");
    }

    #[test]
    fn drift_flags_same_verdict_different_chain() {
        let old = AuditSet {
            suite_id: "s".into(),
            label: "a".into(),
            records: vec![record("x", "exposed"), record("y", "exposed")],
        };
        let mut changed = record("x", "exposed");
        changed.events.insert(
            2,
            ProvenanceEvent::Enforce {
                iteration: 1,
                condition: 0,
                label: 7,
                action: EnforceAction::SkippedUnsat,
            },
        );
        let new = AuditSet {
            suite_id: "s".into(),
            label: "b".into(),
            records: vec![changed, record("y", "target-unsat")],
        };
        let drift = DerivationDrift::between(&old, &new);
        assert_eq!(drift.compared, 2);
        assert_eq!(drift.drifted.len(), 1, "x drifted with verdict intact");
        assert_eq!(drift.drifted[0].site, "x");
        assert_eq!(drift.verdict_changed, 1, "y is the witness diff's job");
        assert!(!drift.is_clean());
        assert!(DerivationDrift::between(&old, &old).is_clean());
    }

    #[test]
    fn canonical_set_is_thread_order_independent() {
        let a = AuditSet {
            suite_id: "s".into(),
            label: "l".into(),
            records: vec![record("b", "exposed"), record("a", "exposed")],
        };
        let b = AuditSet {
            suite_id: "s".into(),
            label: "l".into(),
            records: vec![record("a", "exposed"), record("b", "exposed")],
        };
        assert_eq!(a.canonical(), b.canonical());
        assert!(!a.canonical().contains("cache_hit"));
    }
}
