//! # diode-corpus — persistent on-disk corpus: save, replay, diff, grow
//!
//! The DIODE workflow is longitudinal: sites found in one run seed
//! targeted re-analysis in the next, and an overflow fix is only
//! validated by replaying the stored witness that triggered it. This
//! crate turns forged suites from process-lifetime objects into an
//! **accumulating asset**:
//!
//! * [`CorpusStore::save`] persists a suite under a versioned,
//!   content-addressed directory layout — program source via the
//!   pretty-printer (the canonical serialization), raw seed bytes,
//!   format specs, and the ground-truth oracle;
//! * [`CorpusStore::load`] reconstructs a [`ReplayableSuite`] in any
//!   process: programs round-trip through the parser (so the corpus
//!   doubles as a parser fuzz corpus) and every content hash is
//!   re-verified;
//! * [`CorpusStore::record_witnesses`] freezes a campaign's findings —
//!   per-site outcomes, enforcement counts, triggering inputs, and the
//!   graded [`ScoreCard`] in canonical bytes — as a labelled
//!   [`WitnessSet`];
//! * [`CorpusDiff`] compares two recorded runs and classifies drift into
//!   *new*, *lost*, and *changed* sites — rerun a suite after a guard
//!   limit was tightened and the regression is flagged, not eyeballed;
//! * [`CorpusStore::grow`] extends a stored suite by `n` freshly forged
//!   apps **without re-forging the existing ones** (every app draws from
//!   its own RNG stream), so corpora grow incrementally across sessions.
//!
//! Determinism is cross-process: a suite forged and saved by one process,
//! loaded and replayed by another, yields a byte-identical `ScoreCard`
//! and outcome fingerprint.
//!
//! ```
//! use diode_corpus::{CorpusDiff, CorpusStore};
//! use diode_engine::ExecutionMode;
//! use diode_synth::SynthConfig;
//!
//! # fn main() -> Result<(), diode_corpus::CorpusError> {
//! # let dir = std::env::temp_dir().join(format!("diode-corpus-doc-{}", std::process::id()));
//! let store = CorpusStore::open(&dir)?;
//! let cfg = SynthConfig { apps: 1, min_sites: 1, max_sites: 2, ..SynthConfig::default() };
//! let saved = store.forge_and_save(&cfg)?;
//!
//! // A different process would open the same root and load by ID.
//! let loaded = store.load(saved.id())?;
//! let (report, card) = loaded.replay(ExecutionMode::default());
//! assert!(card.is_perfect());
//! store.record_witnesses(&loaded.witnesses("baseline", &report))?;
//!
//! // Later runs diff against the recorded baseline.
//! let (rerun, _) = loaded.replay(ExecutionMode::Sequential);
//! let baseline = store.load_witnesses(saved.id(), "baseline")?;
//! let diff = CorpusDiff::between(&baseline, &loaded.witnesses("rerun", &rerun));
//! assert!(diff.is_clean());
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```
//!
//! [`ScoreCard`]: diode_synth::ScoreCard

#![warn(missing_docs)]

use std::fmt;
use std::io;
use std::path::PathBuf;

mod audit;
mod codec;
pub mod json;
mod snapmeta;
mod store;
mod witness;

pub use audit::{
    record_file, record_from_json, record_json, record_json_canonical, record_key, AuditSet,
    DerivationDrift,
};
pub use codec::LAYOUT_VERSION;
pub use json::{Json, JsonError};
pub use snapmeta::{SnapshotMeta, SnapshotMetaSet};
pub use store::{CorpusStore, ReplayableSuite, SuiteSummary};
pub use witness::{
    outcome_token, ChangedSite, CorpusDiff, ScoreSummary, SiteKey, SiteWitness, WitnessSet,
};

/// Why a corpus operation failed.
#[derive(Debug)]
pub enum CorpusError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A stored document is not valid JSON.
    Json {
        /// The file involved.
        path: PathBuf,
        /// The parse failure.
        error: JsonError,
    },
    /// A stored document parses but has the wrong shape or content.
    Corrupt {
        /// Which document.
        doc: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A document was written by an incompatible layout version.
    UnsupportedVersion {
        /// Which document.
        doc: String,
        /// The version found.
        found: u64,
        /// The version this build supports.
        supported: u64,
    },
    /// A manifest failed suite reconstruction (parse / canonicality /
    /// hash verification).
    Manifest(diode_synth::ManifestError),
    /// No stored suite matches the given ID or prefix.
    UnknownSuite {
        /// The ID or prefix given.
        id: String,
    },
    /// An ID prefix matches more than one stored suite.
    AmbiguousSuite {
        /// The prefix given.
        prefix: String,
        /// Every matching suite ID.
        matches: Vec<String>,
    },
    /// No witness set recorded under this label.
    UnknownWitnesses {
        /// The suite ID.
        id: String,
        /// The label given.
        label: String,
    },
    /// A witness label is not a safe file stem.
    BadLabel {
        /// The label given.
        label: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            CorpusError::Json { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            CorpusError::Corrupt { doc, reason } => write!(f, "{doc}: {reason}"),
            CorpusError::UnsupportedVersion {
                doc,
                found,
                supported,
            } => write!(
                f,
                "{doc}: layout version {found} unsupported (this build reads {supported})"
            ),
            CorpusError::Manifest(e) => write!(f, "manifest: {e}"),
            CorpusError::UnknownSuite { id } => write!(f, "no stored suite matches {id:?}"),
            CorpusError::AmbiguousSuite { prefix, matches } => write!(
                f,
                "suite prefix {prefix:?} is ambiguous: {}",
                matches.join(", ")
            ),
            CorpusError::UnknownWitnesses { id, label } => {
                write!(f, "{id}: no witnesses recorded under label {label:?}")
            }
            CorpusError::BadLabel { label } => write!(
                f,
                "label {label:?} is not a safe file stem ([A-Za-z0-9._-], no leading dot)"
            ),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io { source, .. } => Some(source),
            CorpusError::Json { error, .. } => Some(error),
            CorpusError::Manifest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<diode_synth::ManifestError> for CorpusError {
    fn from(e: diode_synth::ManifestError) -> Self {
        CorpusError::Manifest(e)
    }
}
