//! The on-disk store: a directory of content-addressed suite directories.
//!
//! ```text
//! <root>/
//!   suite-0123456789abcdef/
//!     manifest.json          config + per-app entries + content hashes
//!     programs/<app>.dl      canonical pretty-printed program source
//!     seeds/<app>.s<k>.bin   raw seed bytes
//!     oracle.json            by-construction ground truth
//!     witnesses/<label>.json recorded campaign runs (replayable findings)
//! ```
//!
//! `manifest.json` is written last, so its presence marks a complete
//! suite; [`CorpusStore::list`] ignores directories without one. Saving
//! is idempotent: a suite's directory name *is* its content hash, so
//! re-saving identical content is a no-op and divergent content cannot
//! collide.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diode_engine::{CampaignReport, CampaignSpec, CorpusSuite, ExecutionMode};
use diode_synth::{
    forge_range, score, ForgedSuite, ScoreCard, SuiteManifest, SynthConfig, SynthOracle,
};

use crate::audit::{self, AuditSet};
use crate::codec;
use crate::json::Json;
use crate::snapmeta::SnapshotMetaSet;
use crate::witness::WitnessSet;
use crate::CorpusError;

/// A suite loaded back from the store, ready to run through the engine.
#[derive(Debug)]
pub struct ReplayableSuite {
    /// The manifest as read (and verified) from disk.
    pub manifest: SuiteManifest,
    /// The reconstructed runnable suite (programs re-parsed from source).
    pub suite: ForgedSuite,
}

impl ReplayableSuite {
    /// The suite's content-addressed identity.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.manifest.suite_id
    }

    /// The configuration that forged the suite.
    #[must_use]
    pub fn config(&self) -> &SynthConfig {
        &self.manifest.config
    }

    /// The ground-truth oracle.
    #[must_use]
    pub fn oracle(&self) -> &SynthOracle {
        &self.suite.oracle
    }

    /// Replays the suite through the campaign scheduler and grades the
    /// report against the stored oracle.
    #[must_use]
    pub fn replay(&self, mode: ExecutionMode) -> (CampaignReport, ScoreCard) {
        let spec = CampaignSpec {
            mode,
            ..CampaignSpec::from_corpus(self)
        };
        let report = spec.run();
        let card = score(&report, &self.suite.oracle);
        (report, card)
    }

    /// Freezes a replay into a labelled witness set for this suite.
    #[must_use]
    pub fn witnesses(&self, label: &str, report: &CampaignReport) -> WitnessSet {
        WitnessSet::from_report(self.id(), label, report, Some(&self.suite.oracle))
    }

    /// Freezes a replay's prefix-snapshot telemetry for this suite.
    #[must_use]
    pub fn snapshot_meta(&self, report: &CampaignReport) -> SnapshotMetaSet {
        SnapshotMetaSet::from_report(self.id(), report)
    }

    /// Freezes a replay's decision provenance, when the run was audited.
    #[must_use]
    pub fn audit(&self, label: &str, report: &CampaignReport) -> Option<AuditSet> {
        AuditSet::from_report(self.id(), label, report)
    }

    /// [`replay`](ReplayableSuite::replay) with decision-provenance
    /// auditing on: the report carries a [`ProvenanceRecord`] per site
    /// (pass it to [`ReplayableSuite::audit`] /
    /// [`CorpusStore::record_audit`]). Outcomes are identical to an
    /// unaudited replay — auditing only observes.
    ///
    /// [`ProvenanceRecord`]: diode_obs::ProvenanceRecord
    #[must_use]
    pub fn replay_audited(&self, mode: ExecutionMode) -> (CampaignReport, ScoreCard) {
        self.replay_with(mode, None, true)
    }

    /// The general replay: optional snapshot-cache priming and optional
    /// decision-provenance auditing, composed. Neither observation
    /// changes outcomes — reports stay byte-identical to a bare
    /// [`replay`](ReplayableSuite::replay).
    #[must_use]
    pub fn replay_with(
        &self,
        mode: ExecutionMode,
        meta: Option<&SnapshotMetaSet>,
        audit: bool,
    ) -> (CampaignReport, ScoreCard) {
        let spec = CampaignSpec {
            mode,
            snapshot_cache: meta.map(|m| std::sync::Arc::new(m.primed_cache(self))),
            recorder: audit
                .then(|| std::sync::Arc::new(diode_engine::Recorder::new().with_audit())),
            ..CampaignSpec::from_corpus(self)
        };
        let report = spec.run();
        let card = score(&report, &self.suite.oracle);
        (report, card)
    }

    /// [`replay`](ReplayableSuite::replay) with the campaign's snapshot
    /// cache primed from recorded metadata: every site's divergence
    /// boundary is installed up front, so the warm-up captures at the
    /// recorded steps and candidate testing skips straight to the
    /// recorded divergent suffixes. Results are byte-identical to an
    /// unprimed replay (priming is a scheduling hint, never an input).
    #[must_use]
    pub fn replay_primed(
        &self,
        mode: ExecutionMode,
        meta: &SnapshotMetaSet,
    ) -> (CampaignReport, ScoreCard) {
        self.replay_with(mode, Some(meta), false)
    }
}

impl CorpusSuite for ReplayableSuite {
    fn campaign_apps(&self) -> Vec<diode_engine::CampaignApp> {
        self.suite.campaign_apps()
    }
}

/// Summary of one stored suite, as listed by [`CorpusStore::list`].
#[derive(Debug, Clone)]
pub struct SuiteSummary {
    /// Suite ID (the directory name).
    pub id: String,
    /// Number of applications.
    pub apps: usize,
    /// Total planted sites.
    pub sites: usize,
    /// Total seed inputs.
    pub seeds: usize,
    /// The forging configuration's RNG seed.
    pub rng_seed: u64,
    /// Recorded witness labels, sorted.
    pub witnesses: Vec<String>,
}

/// Handle to a corpus root directory.
#[derive(Debug, Clone)]
pub struct CorpusStore {
    root: PathBuf,
}

fn read_err(path: &Path, source: io::Error) -> CorpusError {
    CorpusError::Io {
        path: path.to_path_buf(),
        source,
    }
}

fn read_doc(path: &Path) -> Result<Json, CorpusError> {
    let text = fs::read_to_string(path).map_err(|e| read_err(path, e))?;
    Json::parse(&text).map_err(|error| CorpusError::Json {
        path: path.to_path_buf(),
        error,
    })
}

fn write_file(path: &Path, bytes: &[u8]) -> Result<(), CorpusError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| read_err(parent, e))?;
    }
    fs::write(path, bytes).map_err(|e| read_err(path, e))
}

/// A witness label must be a safe file stem.
fn check_label(label: &str) -> Result<(), CorpusError> {
    let ok = !label.is_empty()
        && label.len() <= 64
        && label
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        && !label.starts_with('.');
    if ok {
        Ok(())
    } else {
        Err(CorpusError::BadLabel {
            label: label.to_string(),
        })
    }
}

impl CorpusStore {
    /// Opens (creating if needed) a corpus root directory.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<CorpusStore, CorpusError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| read_err(&root, e))?;
        Ok(CorpusStore { root })
    }

    /// The corpus root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory of a suite ID.
    #[must_use]
    pub fn suite_dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// Forges a suite from a config and saves it; the one-call entry
    /// point behind `corpus forge`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O failure from [`CorpusStore::save`].
    pub fn forge_and_save(&self, cfg: &SynthConfig) -> Result<ReplayableSuite, CorpusError> {
        let suite = diode_synth::forge(cfg);
        let id = self.save(&suite.manifest(cfg))?;
        self.load(&id)
    }

    /// Persists a suite manifest. Returns the suite ID (the directory
    /// name). Saving the same content twice is a no-op; a directory whose
    /// name matches but whose manifest does not is corruption and is
    /// reported, never overwritten.
    ///
    /// # Errors
    ///
    /// I/O failures and same-ID/different-content collisions.
    pub fn save(&self, manifest: &SuiteManifest) -> Result<String, CorpusError> {
        let id = manifest.suite_id.clone();
        let dir = self.suite_dir(&id);
        let manifest_path = dir.join("manifest.json");
        let encoded = codec::manifest_json(manifest).to_string();
        if manifest_path.exists() {
            let existing =
                fs::read_to_string(&manifest_path).map_err(|e| read_err(&manifest_path, e))?;
            if existing == encoded {
                return Ok(id); // idempotent re-save
            }
            return Err(CorpusError::Corrupt {
                doc: manifest_path.display().to_string(),
                reason: "suite directory exists with different content".to_string(),
            });
        }
        for app in &manifest.apps {
            write_file(
                &dir.join(codec::program_file(&app.name)),
                app.program.as_bytes(),
            )?;
            for (k, seed) in app.seeds.iter().enumerate() {
                write_file(&dir.join(codec::seed_file(&app.name, k)), seed)?;
            }
        }
        write_file(
            &dir.join("oracle.json"),
            codec::oracle_json(&id, &manifest.oracle)
                .to_string()
                .as_bytes(),
        )?;
        fs::create_dir_all(dir.join("witnesses")).map_err(|e| read_err(&dir, e))?;
        // Manifest last: its presence marks the suite complete.
        write_file(&manifest_path, encoded.as_bytes())?;
        Ok(id)
    }

    /// Loads a stored suite and reconstructs it: programs are re-parsed
    /// from source (and must be pretty-printer fixpoints), content hashes
    /// and the suite ID are re-verified, and the oracle is re-attached.
    ///
    /// # Errors
    ///
    /// Missing files, malformed documents, parse failures, and any hash
    /// mismatch.
    pub fn load(&self, id: &str) -> Result<ReplayableSuite, CorpusError> {
        let id = self.resolve(id)?;
        let dir = self.suite_dir(&id);
        let shell_doc = read_doc(&dir.join("manifest.json"))?;
        let shell = codec::manifest_from_json("manifest.json", &shell_doc)?;
        if shell.suite_id != id {
            return Err(CorpusError::Corrupt {
                doc: dir.join("manifest.json").display().to_string(),
                reason: format!("directory {id} holds manifest for {}", shell.suite_id),
            });
        }
        let oracle_doc = read_doc(&dir.join("oracle.json"))?;
        let oracle = codec::oracle_from_json("oracle.json", &oracle_doc)?;
        let mut programs = Vec::with_capacity(shell.apps.len());
        let mut seeds = Vec::with_capacity(shell.apps.len());
        for app in &shell.apps {
            let ppath = dir.join(&app.program);
            programs.push(fs::read_to_string(&ppath).map_err(|e| read_err(&ppath, e))?);
            let mut app_seeds = Vec::with_capacity(app.seeds.len());
            for rel in &app.seeds {
                let spath = dir.join(rel);
                app_seeds.push(fs::read(&spath).map_err(|e| read_err(&spath, e))?);
            }
            seeds.push(app_seeds);
        }
        let manifest = codec::manifest_from_parts(shell, programs, seeds, oracle);
        let suite = manifest.to_suite()?;
        Ok(ReplayableSuite { manifest, suite })
    }

    /// IDs of complete suites (directories holding a `manifest.json`),
    /// sorted — name-only, no document parsing.
    fn suite_ids(&self) -> Result<Vec<String>, CorpusError> {
        let mut ids = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(|e| read_err(&self.root, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| read_err(&self.root, e))?;
            if entry.path().join("manifest.json").exists() {
                ids.push(entry.file_name().to_string_lossy().to_string());
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Resolves a suite ID or unique ID prefix (`latest` picks the most
    /// recently modified suite). Works from directory names alone, so
    /// resolution stays cheap (and robust) on large corpora.
    ///
    /// # Errors
    ///
    /// Unknown IDs and ambiguous prefixes.
    pub fn resolve(&self, id_or_prefix: &str) -> Result<String, CorpusError> {
        if self.suite_dir(id_or_prefix).join("manifest.json").exists() {
            return Ok(id_or_prefix.to_string());
        }
        let ids = self.suite_ids()?;
        if id_or_prefix == "latest" {
            let mut with_time: Vec<(std::time::SystemTime, String)> = ids
                .into_iter()
                .map(|id| {
                    let t = fs::metadata(self.suite_dir(&id).join("manifest.json"))
                        .and_then(|m| m.modified())
                        .unwrap_or(std::time::UNIX_EPOCH);
                    (t, id)
                })
                .collect();
            with_time.sort();
            return with_time
                .pop()
                .map(|(_, id)| id)
                .ok_or_else(|| CorpusError::UnknownSuite {
                    id: id_or_prefix.to_string(),
                });
        }
        let matches: Vec<String> = ids
            .into_iter()
            .filter(|id| id.starts_with(id_or_prefix))
            .collect();
        match matches.len() {
            0 => Err(CorpusError::UnknownSuite {
                id: id_or_prefix.to_string(),
            }),
            1 => Ok(matches.into_iter().next().expect("len checked")),
            _ => Err(CorpusError::AmbiguousSuite {
                prefix: id_or_prefix.to_string(),
                matches,
            }),
        }
    }

    /// Lists complete suites (those with a `manifest.json`), in ID order.
    ///
    /// # Errors
    ///
    /// I/O failures walking the root; malformed manifests are reported,
    /// not skipped.
    pub fn list(&self) -> Result<Vec<SuiteSummary>, CorpusError> {
        let mut out = Vec::new();
        for id in self.suite_ids()? {
            let path = self.suite_dir(&id);
            let doc = read_doc(&path.join("manifest.json"))?;
            let shell = codec::manifest_from_json("manifest.json", &doc)?;
            let oracle_doc = read_doc(&path.join("oracle.json"))?;
            let oracle = codec::oracle_from_json("oracle.json", &oracle_doc)?;
            let witnesses = self.witness_labels(&id)?;
            out.push(SuiteSummary {
                id,
                apps: shell.apps.len(),
                sites: oracle.total_sites(),
                seeds: shell.apps.iter().map(|a| a.seeds.len()).sum(),
                rng_seed: shell.config.rng_seed,
                witnesses,
            });
        }
        Ok(out)
    }

    /// Records a witness set under `witnesses/<label>.json` in its
    /// suite's directory. Overwrites an existing label (runs are
    /// re-recordable; the baseline label is the caller's policy).
    ///
    /// # Errors
    ///
    /// Unknown suite IDs, unsafe labels, and I/O failures.
    pub fn record_witnesses(&self, witnesses: &WitnessSet) -> Result<PathBuf, CorpusError> {
        check_label(&witnesses.label)?;
        let id = self.resolve(&witnesses.suite_id)?;
        let path = self
            .suite_dir(&id)
            .join("witnesses")
            .join(format!("{}.json", witnesses.label));
        write_file(&path, codec::witness_json(witnesses).to_string().as_bytes())?;
        Ok(path)
    }

    /// Records a run's prefix-snapshot metadata as `snapshots.json` in
    /// its suite directory (next to `witnesses/`), overwriting the
    /// previous record: the file tracks the *latest* known divergence
    /// boundaries, which a later `corpus replay` primes its snapshot
    /// cache from. Empty sets (snapshot-free runs) are not written.
    pub fn record_snapshots(&self, meta: &SnapshotMetaSet) -> Result<Option<PathBuf>, CorpusError> {
        if meta.is_empty() {
            return Ok(None);
        }
        let id = self.resolve(&meta.suite_id)?;
        let path = self.suite_dir(&id).join("snapshots.json");
        write_file(&path, codec::snapmeta_json(meta).to_string().as_bytes())?;
        Ok(Some(path))
    }

    /// Loads a suite's recorded snapshot metadata, if any was recorded.
    pub fn load_snapshots(&self, id: &str) -> Result<Option<SnapshotMetaSet>, CorpusError> {
        let id = self.resolve(id)?;
        let path = self.suite_dir(&id).join("snapshots.json");
        if !path.exists() {
            return Ok(None);
        }
        let doc = read_doc(&path)?;
        codec::snapmeta_from_json("snapshots.json", &doc).map(Some)
    }

    /// Records an audit set as one document per site under
    /// `audit/<label>/` in its suite's directory (next to `witnesses/`).
    /// Re-recording a label replaces the whole directory, so stale
    /// per-site files from a previous run can never survive.
    ///
    /// # Errors
    ///
    /// Unknown suite IDs, unsafe labels, and I/O failures.
    pub fn record_audit(&self, set: &AuditSet) -> Result<PathBuf, CorpusError> {
        check_label(&set.label)?;
        let id = self.resolve(&set.suite_id)?;
        let dir = self.suite_dir(&id).join("audit").join(&set.label);
        if dir.exists() {
            fs::remove_dir_all(&dir).map_err(|e| read_err(&dir, e))?;
        }
        fs::create_dir_all(&dir).map_err(|e| read_err(&dir, e))?;
        // Canonical form on disk: audit artifacts are byte-identical
        // across thread counts (cache annotations are in-memory only).
        for record in &set.records {
            write_file(
                &dir.join(audit::record_file(record)),
                record.canonical().as_bytes(),
            )?;
        }
        Ok(dir)
    }

    /// Loads a recorded audit set by suite and label, or `None` when the
    /// run was not audited (audit recording is opt-in, unlike witnesses).
    ///
    /// # Errors
    ///
    /// Unknown suite IDs, unsafe labels, corrupt records, and I/O
    /// failures.
    pub fn load_audit(&self, id: &str, label: &str) -> Result<Option<AuditSet>, CorpusError> {
        check_label(label)?;
        let id = self.resolve(id)?;
        let dir = self.suite_dir(&id).join("audit").join(label);
        if !dir.exists() {
            return Ok(None);
        }
        let mut records = Vec::new();
        for entry in fs::read_dir(&dir).map_err(|e| read_err(&dir, e))? {
            let entry = entry.map_err(|e| read_err(&dir, e))?;
            let name = entry.file_name().to_string_lossy().to_string();
            if !name.ends_with(".json") {
                continue;
            }
            let doc = read_doc(&entry.path())?;
            records.push(audit::record_from_json(
                &format!("audit/{label}/{name}"),
                &doc,
            )?);
        }
        records.sort_by(|a, b| (&a.app, a.seed, &a.site).cmp(&(&b.app, b.seed, &b.site)));
        Ok(Some(AuditSet {
            suite_id: id,
            label: label.to_string(),
            records,
        }))
    }

    /// Recorded audit labels of a suite, sorted.
    ///
    /// # Errors
    ///
    /// Unknown suite IDs and I/O failures.
    pub fn audit_labels(&self, id: &str) -> Result<Vec<String>, CorpusError> {
        let id = self.resolve(id)?;
        let dir = self.suite_dir(&id).join("audit");
        let mut labels = Vec::new();
        if dir.exists() {
            for entry in fs::read_dir(&dir).map_err(|e| read_err(&dir, e))? {
                let entry = entry.map_err(|e| read_err(&dir, e))?;
                if entry.path().is_dir() {
                    labels.push(entry.file_name().to_string_lossy().to_string());
                }
            }
        }
        labels.sort();
        Ok(labels)
    }

    /// Loads a recorded witness set by suite and label, re-verifying its
    /// embedded fingerprint.
    ///
    /// # Errors
    ///
    /// Unknown suites/labels and document corruption.
    pub fn load_witnesses(&self, id: &str, label: &str) -> Result<WitnessSet, CorpusError> {
        check_label(label)?;
        let id = self.resolve(id)?;
        let path = self
            .suite_dir(&id)
            .join("witnesses")
            .join(format!("{label}.json"));
        if !path.exists() {
            return Err(CorpusError::UnknownWitnesses {
                id,
                label: label.to_string(),
            });
        }
        let doc = read_doc(&path)?;
        codec::witness_from_json(&format!("witnesses/{label}.json"), &doc)
    }

    /// Recorded witness labels of a suite, sorted.
    ///
    /// # Errors
    ///
    /// Unknown suite IDs and I/O failures.
    pub fn witness_labels(&self, id: &str) -> Result<Vec<String>, CorpusError> {
        let id = self.resolve(id)?;
        let dir = self.suite_dir(&id).join("witnesses");
        let mut labels = Vec::new();
        if dir.exists() {
            for entry in fs::read_dir(&dir).map_err(|e| read_err(&dir, e))? {
                let entry = entry.map_err(|e| read_err(&dir, e))?;
                let name = entry.file_name().to_string_lossy().to_string();
                if let Some(stem) = name.strip_suffix(".json") {
                    labels.push(stem.to_string());
                }
            }
        }
        labels.sort();
        Ok(labels)
    }

    /// Grows a stored suite by `n` freshly forged applications **without
    /// re-forging the existing ones**: stored app images are reused
    /// verbatim, and only indices `apps .. apps + n` are forged (each app
    /// draws from its own RNG stream, so the result is byte-identical to
    /// having forged the larger suite in one shot). The grown suite is
    /// saved under its own content-addressed ID; the original is left
    /// untouched.
    ///
    /// # Errors
    ///
    /// Load/save failures on either end.
    pub fn grow(&self, id: &str, n: usize) -> Result<ReplayableSuite, CorpusError> {
        let existing = self.load(id)?;
        let old_cfg = existing.manifest.config.clone();
        let grown_cfg = SynthConfig {
            apps: old_cfg.apps + n,
            ..old_cfg
        };
        let fresh = forge_range(&grown_cfg, existing.manifest.config.apps, n);
        let fresh_manifest = SuiteManifest::from_suite(&grown_cfg, &fresh);
        let mut apps = existing.manifest.apps.clone();
        apps.extend(fresh_manifest.apps);
        let mut oracle = existing.manifest.oracle.clone();
        oracle.apps.extend(fresh.oracle.apps);
        let grown = SuiteManifest::assemble(grown_cfg, apps, oracle);
        let new_id = self.save(&grown)?;
        self.load(&new_id)
    }
}
