//! JSON codecs for the three corpus document kinds: `manifest.json`,
//! `oracle.json`, and `witnesses/<label>.json`.
//!
//! Encoding is canonical (field order fixed, `u64`s exact), so document
//! equality is byte equality; decoding validates shape and reports the
//! first problem with enough context to locate it.

use diode_format::FormatDesc;
use diode_synth::{
    AppManifest, AppOracle, ClassMix, GroundTruth, PlantedSite, ShapeClass, SuiteManifest,
    SynthConfig, SynthOracle, WidthClass,
};

use crate::json::Json;
use crate::snapmeta::{SnapshotMeta, SnapshotMetaSet};
use crate::witness::{ScoreSummary, SiteWitness, WitnessSet};
use crate::CorpusError;

/// On-disk layout version; bumped when documents change incompatibly.
pub const LAYOUT_VERSION: u64 = 1;

fn bad(doc: &str, what: impl Into<String>) -> CorpusError {
    CorpusError::Corrupt {
        doc: doc.to_string(),
        reason: what.into(),
    }
}

fn need<'a>(doc: &str, v: &'a Json, key: &str) -> Result<&'a Json, CorpusError> {
    v.get(key)
        .ok_or_else(|| bad(doc, format!("missing {key:?}")))
}

fn need_str(doc: &str, v: &Json, key: &str) -> Result<String, CorpusError> {
    Ok(need(doc, v, key)?
        .as_str()
        .ok_or_else(|| bad(doc, format!("{key:?} is not a string")))?
        .to_string())
}

fn need_u64(doc: &str, v: &Json, key: &str) -> Result<u64, CorpusError> {
    need(doc, v, key)?
        .as_u64()
        .ok_or_else(|| bad(doc, format!("{key:?} is not an unsigned integer")))
}

fn need_usize(doc: &str, v: &Json, key: &str) -> Result<usize, CorpusError> {
    usize::try_from(need_u64(doc, v, key)?)
        .map_err(|_| bad(doc, format!("{key:?} does not fit usize")))
}

fn need_bool(doc: &str, v: &Json, key: &str) -> Result<bool, CorpusError> {
    need(doc, v, key)?
        .as_bool()
        .ok_or_else(|| bad(doc, format!("{key:?} is not a bool")))
}

fn need_arr<'a>(doc: &str, v: &'a Json, key: &str) -> Result<&'a [Json], CorpusError> {
    need(doc, v, key)?
        .as_arr()
        .ok_or_else(|| bad(doc, format!("{key:?} is not an array")))
}

fn check_version(doc: &str, v: &Json) -> Result<(), CorpusError> {
    let found = need_u64(doc, v, "version")?;
    if found != LAYOUT_VERSION {
        return Err(CorpusError::UnsupportedVersion {
            doc: doc.to_string(),
            found,
            supported: LAYOUT_VERSION,
        });
    }
    Ok(())
}

// --------------------------------------------------------------------------
// SynthConfig

fn config_json(cfg: &SynthConfig) -> Json {
    Json::obj()
        .field("apps", cfg.apps)
        .field("min_sites", cfg.min_sites)
        .field("max_sites", cfg.max_sites)
        .field("branch_depth", cfg.branch_depth)
        .field(
            "widths",
            cfg.widths.iter().map(|w| w.token()).collect::<Vec<_>>(),
        )
        .field(
            "shapes",
            cfg.shapes.iter().map(|s| s.token()).collect::<Vec<_>>(),
        )
        .field(
            "mix",
            Json::obj()
                .field("exposable", cfg.mix.exposable)
                .field("guard_prevented", cfg.mix.guard_prevented)
                .field("target_unsat", cfg.mix.target_unsat),
        )
        .field("checksum", cfg.checksum)
        .field("blocking_loops", cfg.blocking_loops)
        .field("site_work", cfg.site_work)
        .field("seeds_per_app", cfg.seeds_per_app)
        .field("rng_seed", cfg.rng_seed)
}

fn config_from_json(doc: &str, v: &Json) -> Result<SynthConfig, CorpusError> {
    let widths = need_arr(doc, v, "widths")?
        .iter()
        .map(|w| {
            w.as_str()
                .and_then(WidthClass::from_token)
                .ok_or_else(|| bad(doc, format!("unknown width token {w}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let shapes = need_arr(doc, v, "shapes")?
        .iter()
        .map(|s| {
            s.as_str()
                .and_then(ShapeClass::from_token)
                .ok_or_else(|| bad(doc, format!("unknown shape token {s}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mix = need(doc, v, "mix")?;
    let as_u32 = |key: &str| -> Result<u32, CorpusError> {
        u32::try_from(need_u64(doc, mix, key)?)
            .map_err(|_| bad(doc, format!("mix.{key} does not fit u32")))
    };
    Ok(SynthConfig {
        apps: need_usize(doc, v, "apps")?,
        min_sites: need_usize(doc, v, "min_sites")?,
        max_sites: need_usize(doc, v, "max_sites")?,
        branch_depth: need_usize(doc, v, "branch_depth")?,
        widths,
        shapes,
        mix: ClassMix {
            exposable: as_u32("exposable")?,
            guard_prevented: as_u32("guard_prevented")?,
            target_unsat: as_u32("target_unsat")?,
        },
        checksum: need_bool(doc, v, "checksum")?,
        blocking_loops: need_bool(doc, v, "blocking_loops")?,
        // Absent in corpora stored before the knob existed: default 0
        // (which forges byte-identical suites to the old code).
        site_work: match v.get("site_work") {
            Some(w) => u32::try_from(
                w.as_u64()
                    .ok_or_else(|| bad(doc, "site_work is not an integer"))?,
            )
            .map_err(|_| bad(doc, "site_work does not fit u32"))?,
            None => 0,
        },
        seeds_per_app: need_usize(doc, v, "seeds_per_app")?,
        rng_seed: need_u64(doc, v, "rng_seed")?,
    })
}

// --------------------------------------------------------------------------
// manifest.json

/// File name of one app's program within the suite directory.
#[must_use]
pub fn program_file(app: &str) -> String {
    format!("programs/{app}.dl")
}

/// File name of one app's `k`-th seed within the suite directory.
#[must_use]
pub fn seed_file(app: &str, k: usize) -> String {
    format!("seeds/{app}.s{k}.bin")
}

/// Encodes the manifest document. Program text and seed bytes live in
/// their own files; the manifest records their relative paths so the
/// directory is self-describing.
#[must_use]
pub fn manifest_json(m: &SuiteManifest) -> Json {
    let apps: Vec<Json> = m
        .apps
        .iter()
        .map(|a| {
            Json::obj()
                .field("name", a.name.clone())
                .field("program", program_file(&a.name))
                .field(
                    "seeds",
                    (0..a.seeds.len())
                        .map(|k| seed_file(&a.name, k))
                        .collect::<Vec<_>>(),
                )
                .field("format_spec", a.format.to_spec())
                .field("content_hash", a.content_hash.clone())
        })
        .collect();
    Json::obj()
        .field("version", LAYOUT_VERSION)
        .field("suite_id", m.suite_id.clone())
        .field("config", config_json(&m.config))
        .field("apps", Json::Arr(apps))
}

/// Decoded manifest shell: everything in `manifest.json` itself, with
/// programs and seeds still to be read from their referenced files.
#[derive(Debug)]
pub struct ManifestShell {
    /// Recorded suite ID.
    pub suite_id: String,
    /// The forging configuration.
    pub config: SynthConfig,
    /// Per-app entries.
    pub apps: Vec<AppShell>,
}

/// One app entry of a decoded manifest shell.
#[derive(Debug)]
pub struct AppShell {
    /// App name.
    pub name: String,
    /// Relative path of the program file.
    pub program: String,
    /// Relative paths of the seed files.
    pub seeds: Vec<String>,
    /// The parsed format description.
    pub format: FormatDesc,
    /// Recorded content hash.
    pub content_hash: String,
}

/// Decodes `manifest.json`.
///
/// # Errors
///
/// Any missing field, wrong type, unknown token, bad format spec, or
/// unsupported version is a [`CorpusError`].
pub fn manifest_from_json(doc: &str, v: &Json) -> Result<ManifestShell, CorpusError> {
    check_version(doc, v)?;
    let mut apps = Vec::new();
    for entry in need_arr(doc, v, "apps")? {
        let spec = need_str(doc, entry, "format_spec")?;
        let format = FormatDesc::from_spec(&spec).map_err(|e| bad(doc, e.to_string()))?;
        let seeds = need_arr(doc, entry, "seeds")?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| bad(doc, "seed path is not a string"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        apps.push(AppShell {
            name: need_str(doc, entry, "name")?,
            program: need_str(doc, entry, "program")?,
            seeds,
            format,
            content_hash: need_str(doc, entry, "content_hash")?,
        });
    }
    Ok(ManifestShell {
        suite_id: need_str(doc, v, "suite_id")?,
        config: config_from_json(doc, need(doc, v, "config")?)?,
        apps,
    })
}

/// Rebuilds the full [`SuiteManifest`] from a shell plus the file
/// contents the shell references.
#[must_use]
pub fn manifest_from_parts(
    shell: ManifestShell,
    programs: Vec<String>,
    seeds: Vec<Vec<Vec<u8>>>,
    oracle: SynthOracle,
) -> SuiteManifest {
    let apps = shell
        .apps
        .into_iter()
        .zip(programs)
        .zip(seeds)
        .map(|((a, program), seeds)| AppManifest {
            name: a.name,
            program,
            format: a.format,
            seeds,
            content_hash: a.content_hash,
        })
        .collect();
    SuiteManifest {
        suite_id: shell.suite_id,
        config: shell.config,
        apps,
        oracle,
    }
}

// --------------------------------------------------------------------------
// oracle.json

/// Encodes the oracle document.
#[must_use]
pub fn oracle_json(suite_id: &str, oracle: &SynthOracle) -> Json {
    let apps: Vec<Json> = oracle
        .apps
        .iter()
        .map(|a| {
            let sites: Vec<Json> = a
                .sites
                .iter()
                .map(|s| {
                    Json::obj()
                        .field("site", s.site.clone())
                        .field("truth", s.truth.token())
                        .field("fields", s.fields.clone())
                        .field("shape", s.shape.clone())
                        .field("guards", s.guards.clone())
                        .field("overflow_threshold", s.overflow_threshold)
                })
                .collect();
            Json::obj()
                .field("app", a.app.clone())
                .field("sites", Json::Arr(sites))
        })
        .collect();
    Json::obj()
        .field("version", LAYOUT_VERSION)
        .field("suite_id", suite_id)
        .field("apps", Json::Arr(apps))
}

/// Decodes `oracle.json`.
///
/// # Errors
///
/// Any shape problem is a [`CorpusError`].
pub fn oracle_from_json(doc: &str, v: &Json) -> Result<SynthOracle, CorpusError> {
    check_version(doc, v)?;
    let mut apps = Vec::new();
    for entry in need_arr(doc, v, "apps")? {
        let mut sites = Vec::new();
        for s in need_arr(doc, entry, "sites")? {
            let truth = need_str(doc, s, "truth")?;
            let truth = GroundTruth::from_token(&truth)
                .ok_or_else(|| bad(doc, format!("unknown truth token {truth:?}")))?;
            let fields = need_arr(doc, s, "fields")?
                .iter()
                .map(|f| {
                    f.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad(doc, "field path is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let guards = need_arr(doc, s, "guards")?
                .iter()
                .map(|g| {
                    g.as_u64()
                        .ok_or_else(|| bad(doc, "guard limit is not a u64"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let threshold = need(doc, s, "overflow_threshold")?;
            let overflow_threshold = if threshold.is_null() {
                None
            } else {
                Some(
                    threshold
                        .as_u64()
                        .ok_or_else(|| bad(doc, "overflow_threshold is not a u64"))?,
                )
            };
            sites.push(PlantedSite {
                site: need_str(doc, s, "site")?,
                truth,
                fields,
                shape: need_str(doc, s, "shape")?,
                guards,
                overflow_threshold,
            });
        }
        apps.push(AppOracle {
            app: need_str(doc, entry, "app")?,
            sites,
        });
    }
    Ok(SynthOracle { apps })
}

// --------------------------------------------------------------------------
// witnesses/<label>.json

fn score_json(s: &ScoreSummary) -> Json {
    Json::obj()
        .field("graded", s.graded)
        .field("true_pos", s.true_pos)
        .field("false_pos", s.false_pos)
        .field("false_neg", s.false_neg)
        .field("true_neg", s.true_neg)
        .field("exact", s.exact)
        .field("mismatches", s.mismatches.clone())
}

fn score_from_json(doc: &str, v: &Json) -> Result<ScoreSummary, CorpusError> {
    let mismatches = need_arr(doc, v, "mismatches")?
        .iter()
        .map(|m| {
            m.as_str()
                .map(str::to_string)
                .ok_or_else(|| bad(doc, "mismatch is not a string"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ScoreSummary {
        graded: need_usize(doc, v, "graded")?,
        true_pos: need_usize(doc, v, "true_pos")?,
        false_pos: need_usize(doc, v, "false_pos")?,
        false_neg: need_usize(doc, v, "false_neg")?,
        true_neg: need_usize(doc, v, "true_neg")?,
        exact: need_usize(doc, v, "exact")?,
        mismatches,
    })
}

/// Encodes a witness set, embedding its [fingerprint](WitnessSet::fingerprint).
#[must_use]
pub fn witness_json(w: &WitnessSet) -> Json {
    let sites: Vec<Json> = w
        .sites
        .iter()
        .map(|s| {
            Json::obj()
                .field("app", s.app.clone())
                .field("seed_index", s.seed_index)
                .field("site", s.site.clone())
                .field("outcome", s.outcome.clone())
                .field("enforced", s.enforced)
                .field("input", s.input_hex.clone())
                .field("error_type", s.error_type.clone())
                .field("verified", s.verified)
        })
        .collect();
    Json::obj()
        .field("version", LAYOUT_VERSION)
        .field("suite_id", w.suite_id.clone())
        .field("label", w.label.clone())
        .field("threads", w.threads)
        .field("fingerprint", w.fingerprint())
        .field(
            "scorecard",
            w.scorecard.as_ref().map(score_json).unwrap_or(Json::Null),
        )
        .field("sites", Json::Arr(sites))
}

/// Decodes a witness document, re-verifying the embedded fingerprint
/// against the site records actually present.
///
/// # Errors
///
/// Shape problems and fingerprint drift are [`CorpusError`]s.
pub fn witness_from_json(doc: &str, v: &Json) -> Result<WitnessSet, CorpusError> {
    check_version(doc, v)?;
    let opt_str = |s: &Json, key: &str| -> Result<Option<String>, CorpusError> {
        match need(doc, s, key)? {
            Json::Null => Ok(None),
            other => Ok(Some(
                other
                    .as_str()
                    .ok_or_else(|| bad(doc, format!("{key:?} is not a string")))?
                    .to_string(),
            )),
        }
    };
    let mut sites = Vec::new();
    for s in need_arr(doc, v, "sites")? {
        let enforced = match need(doc, s, "enforced")? {
            Json::Null => None,
            other => Some(
                other
                    .as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| bad(doc, "enforced is not a usize"))?,
            ),
        };
        let verified = match need(doc, s, "verified")? {
            Json::Null => None,
            other => Some(
                other
                    .as_bool()
                    .ok_or_else(|| bad(doc, "verified is not a bool"))?,
            ),
        };
        sites.push(SiteWitness {
            app: need_str(doc, s, "app")?,
            seed_index: need_usize(doc, s, "seed_index")?,
            site: need_str(doc, s, "site")?,
            outcome: need_str(doc, s, "outcome")?,
            enforced,
            input_hex: opt_str(s, "input")?,
            error_type: opt_str(s, "error_type")?,
            verified,
        });
    }
    let scorecard = match need(doc, v, "scorecard")? {
        Json::Null => None,
        other => Some(score_from_json(doc, other)?),
    };
    let set = WitnessSet {
        suite_id: need_str(doc, v, "suite_id")?,
        label: need_str(doc, v, "label")?,
        threads: need_usize(doc, v, "threads")?,
        scorecard,
        sites,
    };
    let stored = need_str(doc, v, "fingerprint")?;
    let computed = set.fingerprint();
    if stored != computed {
        return Err(bad(
            doc,
            format!("fingerprint mismatch (stored {stored}, computed {computed})"),
        ));
    }
    Ok(set)
}

// --------------------------------------------------------------------------
// snapshots.json

/// Serializes a snapshot-metadata set.
#[must_use]
pub fn snapmeta_json(m: &SnapshotMetaSet) -> Json {
    let sites: Vec<Json> = m
        .sites
        .iter()
        .map(|s| {
            Json::obj()
                .field("app", s.app.clone())
                .field("seed_index", s.seed_index)
                .field("site", s.site.clone())
                .field("first_divergent_step", s.first_divergent_step)
                .field("divergent_bytes", s.divergent_bytes.to_vec())
                .field("candidates", s.candidates)
                .field("resumed", s.resumed)
        })
        .collect();
    Json::obj()
        .field("version", LAYOUT_VERSION)
        .field("suite_id", m.suite_id.clone())
        .field("sites", Json::Arr(sites))
}

/// Parses a snapshot-metadata set.
pub fn snapmeta_from_json(doc: &str, v: &Json) -> Result<SnapshotMetaSet, CorpusError> {
    check_version(doc, v)?;
    let mut sites = Vec::new();
    for s in need_arr(doc, v, "sites")? {
        let first_divergent_step = match need(doc, s, "first_divergent_step")? {
            Json::Null => None,
            other => Some(
                other
                    .as_u64()
                    .ok_or_else(|| bad(doc, "first_divergent_step is not a u64"))?,
            ),
        };
        let divergent_bytes = need_arr(doc, s, "divergent_bytes")?
            .iter()
            .map(|b| {
                b.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| bad(doc, "divergent byte offset is not a u32"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        sites.push(SnapshotMeta {
            app: need_str(doc, s, "app")?,
            seed_index: need_usize(doc, s, "seed_index")?,
            site: need_str(doc, s, "site")?,
            first_divergent_step,
            divergent_bytes,
            candidates: need_u64(doc, s, "candidates")?,
            resumed: need_u64(doc, s, "resumed")?,
        });
    }
    Ok(SnapshotMetaSet {
        suite_id: need_str(doc, v, "suite_id")?,
        sites,
    })
}
