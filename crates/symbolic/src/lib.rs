//! # diode-symbolic — symbolic expressions over input bytes
//!
//! The recording substrate of the DIODE reproduction (paper §4.2): shared,
//! immutable symbolic expression DAGs ([`SymExpr`]) and boolean conditions
//! ([`SymBool`]) over individual input bytes, with the paper's run-time
//! simplifications applied at construction, plus the `overflow(B)`
//! transformation ([`overflow_condition`]) that derives the target
//! constraint β from a target expression (§3.3/§4.3).
//!
//! The `diode-interp` crate builds these expressions while executing a
//! program on its seed input; `diode-core` turns them into constraints for
//! the `diode-solver` bitvector solver.
//!
//! ## Example: a target constraint with exactly two solutions
//!
//! The paper's CVE-2008-2430 site has target expression `x + 2` over a
//! 32-bit input field — only `0xFFFFFFFE` and `0xFFFFFFFF` overflow:
//!
//! ```
//! use diode_lang::{BinOp, Bv, CastKind};
//! use diode_symbolic::{overflow_condition, SymExpr};
//!
//! let byte = |o| SymExpr::input_byte(o).cast(CastKind::Zext, 32);
//! let sh = |n| SymExpr::constant(Bv::u32(n));
//! let x = byte(0).bin(BinOp::Shl, sh(24))
//!     .bin(BinOp::Or, byte(1).bin(BinOp::Shl, sh(16)))
//!     .bin(BinOp::Or, byte(2).bin(BinOp::Shl, sh(8)))
//!     .bin(BinOp::Or, byte(3));
//! let beta = overflow_condition(&x.bin(BinOp::Add, SymExpr::constant(Bv::u32(2))));
//! assert!(beta.eval(&|_| 0xff));        // x = 0xFFFFFFFF overflows
//! assert!(!beta.eval(&|_| 0x00));       // x = 0 does not
//! ```

#![warn(missing_docs)]

mod cond;
mod expr;

pub use cond::{concrete_bin, overflow_condition, OvfKind, SymBool};
pub use expr::{eval_bin, Sym, SymExpr};
