//! Symbolic arithmetic expressions over input bytes.
//!
//! A [`SymExpr`] characterises how the program computes a value as a
//! function of the *relevant input bytes* (§1.1). Expressions are immutable
//! reference-counted DAGs: when the interpreter propagates a symbolic value
//! through the program, sub-expressions are shared rather than copied,
//! which is what makes recording feasible ("compressed for efficiency",
//! §1.3).
//!
//! Construction applies the paper's §4.2 run-time simplifications: constant
//! folding, collapsing of constant add/mul chains (the `Add32` example),
//! neutral-element elimination, and cast fusion. All rewrites preserve the
//! concrete value of the expression; the few that could mask an
//! intermediate wrap-around (nested constant folds) are only applied when
//! the folded constant itself does not wrap.

use std::fmt;
use std::sync::Arc;

use diode_lang::{BinOp, Bv, CastKind, UnOp};

/// Interior node of a symbolic expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Sym {
    /// A compile-time constant.
    Const(Bv),
    /// One byte of program input at the given offset (8 bits wide). The
    /// paper renders these as Hachoir field references (`HachField`); the
    /// byte-offset → field mapping lives in `diode-format`.
    InputByte(u32),
    /// Unary operation.
    Un(UnOp, SymExpr),
    /// Binary operation (operands have equal width).
    Bin(BinOp, SymExpr, SymExpr),
    /// Width conversion (`ToSize`/`Shrink` in the paper's rendering).
    Cast(CastKind, u8, SymExpr),
}

#[derive(Debug)]
struct Node {
    sym: Sym,
    width: u8,
    /// Sorted, deduplicated input-byte offsets this expression depends on.
    bytes: Arc<[u32]>,
}

/// A reference-counted symbolic expression (cheap to clone, shared
/// structurally).
///
/// # Examples
///
/// ```
/// use diode_lang::{BinOp, Bv, CastKind};
/// use diode_symbolic::SymExpr;
///
/// // (zext32(in[0]) << 8) | zext32(in[1]) — a 16-bit big-endian field read.
/// let hi = SymExpr::input_byte(0).cast(CastKind::Zext, 32);
/// let lo = SymExpr::input_byte(1).cast(CastKind::Zext, 32);
/// let field = hi.bin(BinOp::Shl, SymExpr::constant(Bv::u32(8))).bin(BinOp::Or, lo);
/// assert_eq!(field.width(), 32);
/// assert_eq!(field.input_bytes(), &[0, 1]);
/// assert_eq!(field.eval(&|off| [0xAB, 0xCD][off as usize]).value(), 0xABCD);
/// ```
#[derive(Clone)]
pub struct SymExpr(Arc<Node>);

impl SymExpr {
    /// A constant expression.
    #[must_use]
    pub fn constant(bv: Bv) -> Self {
        SymExpr(Arc::new(Node {
            width: bv.width(),
            sym: Sym::Const(bv),
            bytes: Arc::from(Vec::new()),
        }))
    }

    /// The input byte at `offset` (8 bits wide).
    #[must_use]
    pub fn input_byte(offset: u32) -> Self {
        SymExpr(Arc::new(Node {
            width: 8,
            sym: Sym::InputByte(offset),
            bytes: Arc::from(vec![offset]),
        }))
    }

    /// The node's operator/operands.
    #[must_use]
    pub fn sym(&self) -> &Sym {
        &self.0.sym
    }

    /// The expression's width in bits.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.0.width
    }

    /// The constant value, if this expression is a constant.
    #[must_use]
    pub fn as_const(&self) -> Option<Bv> {
        match self.0.sym {
            Sym::Const(bv) => Some(bv),
            _ => None,
        }
    }

    /// Sorted input-byte offsets this expression depends on (the *relevant
    /// input bytes* of the value it describes).
    #[must_use]
    pub fn input_bytes(&self) -> &[u32] {
        &self.0.bytes
    }

    /// True if the two references share the same node (O(1)).
    #[must_use]
    pub fn ptr_eq(a: &SymExpr, b: &SymExpr) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// An opaque identity for the shared node: two expressions return the
    /// same id iff [`SymExpr::ptr_eq`] holds. Valid only while at least one
    /// of the references is alive; intended for memoized DAG traversals
    /// (e.g. the solver query cache's structural fingerprinting).
    #[must_use]
    pub fn node_id(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    fn merged_bytes(a: &SymExpr, b: &SymExpr) -> Arc<[u32]> {
        if a.0.bytes.is_empty() {
            return b.0.bytes.clone();
        }
        if b.0.bytes.is_empty() {
            return a.0.bytes.clone();
        }
        let mut out = Vec::with_capacity(a.0.bytes.len() + b.0.bytes.len());
        let (mut i, mut j) = (0, 0);
        while i < a.0.bytes.len() && j < b.0.bytes.len() {
            match a.0.bytes[i].cmp(&b.0.bytes[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a.0.bytes[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b.0.bytes[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a.0.bytes[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a.0.bytes[i..]);
        out.extend_from_slice(&b.0.bytes[j..]);
        Arc::from(out)
    }

    /// Builds a unary operation, folding constants and removing double
    /// negation/complement.
    ///
    /// # Panics
    ///
    /// Never panics: unary operations preserve width.
    #[must_use]
    pub fn un(&self, op: UnOp) -> SymExpr {
        if let Some(bv) = self.as_const() {
            let folded = match op {
                UnOp::Neg => self_neg(bv),
                UnOp::Not => bv.not(),
            };
            return SymExpr::constant(folded);
        }
        if let Sym::Un(inner_op, inner) = &self.0.sym {
            if *inner_op == op {
                // -(-x) == x and ~(~x) == x.
                return inner.clone();
            }
        }
        SymExpr(Arc::new(Node {
            width: self.0.width,
            sym: Sym::Un(op, self.clone()),
            bytes: self.0.bytes.clone(),
        }))
    }

    /// Builds a binary operation with on-line simplification (§4.2).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ (the interpreter checks widths
    /// before constructing symbolic values).
    #[must_use]
    pub fn bin(&self, op: BinOp, rhs: SymExpr) -> SymExpr {
        let lhs = self.clone();
        assert_eq!(
            lhs.width(),
            rhs.width(),
            "symbolic binop width mismatch for {op:?}"
        );
        let w = lhs.width();

        // Constant folding.
        if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
            return SymExpr::constant(eval_bin(op, a, b).0);
        }

        // Canonicalise: constants to the right for commutative ops.
        let (lhs, rhs) = if matches!(
            op,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        ) && lhs.as_const().is_some()
        {
            (rhs, lhs)
        } else {
            (lhs, rhs)
        };

        if let Some(c) = rhs.as_const() {
            // Neutral / absorbing elements.
            match op {
                BinOp::Add
                | BinOp::Sub
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Shl
                | BinOp::LShr
                | BinOp::AShr
                    if c.is_zero() =>
                {
                    return lhs;
                }
                BinOp::Mul if c == Bv::one(w) => return lhs,
                BinOp::Mul | BinOp::And if c.is_zero() => {
                    return SymExpr::constant(Bv::zero(w));
                }
                BinOp::And if c == Bv::ones(w) => return lhs,
                BinOp::Or if c == Bv::ones(w) => return SymExpr::constant(Bv::ones(w)),
                BinOp::UDiv if c == Bv::one(w) => return lhs,
                _ => {}
            }
            // Chain collapsing: (x op c1) op c2 → x op (c1 ⊕ c2) where safe.
            if let Sym::Bin(inner_op, x, c1) = &lhs.0.sym {
                if *inner_op == op {
                    if let Some(c1) = c1.as_const() {
                        match op {
                            BinOp::Add => {
                                // Always value-preserving; this is the
                                // paper's Add32-chain example.
                                let (folded, _) = c1.add(c);
                                return x.bin(BinOp::Add, SymExpr::constant(folded));
                            }
                            BinOp::Mul => {
                                let (folded, wrapped) = c1.mul(c);
                                if !wrapped {
                                    return x.bin(BinOp::Mul, SymExpr::constant(folded));
                                }
                            }
                            BinOp::And | BinOp::Or | BinOp::Xor => {
                                let folded = match op {
                                    BinOp::And => c1.and(c),
                                    BinOp::Or => c1.or(c),
                                    _ => c1.xor(c),
                                };
                                return x.bin(op, SymExpr::constant(folded));
                            }
                            _ => {}
                        }
                    }
                }
            }
        }

        // x - x → 0 (pointer equality only: cheap and sound).
        if op == BinOp::Sub && SymExpr::ptr_eq(&lhs, &rhs) {
            return SymExpr::constant(Bv::zero(w));
        }
        // x ^ x → 0.
        if op == BinOp::Xor && SymExpr::ptr_eq(&lhs, &rhs) {
            return SymExpr::constant(Bv::zero(w));
        }

        let bytes = SymExpr::merged_bytes(&lhs, &rhs);
        SymExpr(Arc::new(Node {
            width: w,
            sym: Sym::Bin(op, lhs, rhs),
            bytes,
        }))
    }

    /// Builds a width conversion with cast fusion.
    ///
    /// # Panics
    ///
    /// Panics if the conversion does not change width in the required
    /// direction (zext/sext must widen, trunc must narrow).
    #[must_use]
    pub fn cast(&self, kind: CastKind, width: u8) -> SymExpr {
        match kind {
            CastKind::Zext | CastKind::Sext => {
                assert!(width > self.width(), "extension must widen");
            }
            CastKind::Trunc => assert!(width < self.width(), "truncation must narrow"),
        }
        if let Some(bv) = self.as_const() {
            let folded = match kind {
                CastKind::Zext => bv.zext(width),
                CastKind::Sext => bv.sext(width),
                CastKind::Trunc => bv.trunc(width).0,
            };
            return SymExpr::constant(folded);
        }
        // Cast fusion.
        if let Sym::Cast(inner_kind, _, inner) = &self.0.sym {
            match (inner_kind, kind) {
                // zext(zext(x)) → zext(x); same for sext.
                (CastKind::Zext, CastKind::Zext) => return inner.cast(CastKind::Zext, width),
                (CastKind::Sext, CastKind::Sext) => return inner.cast(CastKind::Sext, width),
                // trunc_w(zext(x)): only zero bits can be dropped down to
                // x's width, so the result is x itself (w == |x|), a
                // shorter zext (w > |x|), or a truncation of x (w < |x|).
                (CastKind::Zext, CastKind::Trunc) => {
                    return match width.cmp(&inner.width()) {
                        std::cmp::Ordering::Equal => inner.clone(),
                        std::cmp::Ordering::Greater => inner.cast(CastKind::Zext, width),
                        std::cmp::Ordering::Less => inner.cast(CastKind::Trunc, width),
                    };
                }
                (CastKind::Trunc, CastKind::Trunc) => {
                    return inner.cast(CastKind::Trunc, width);
                }
                _ => {}
            }
        }
        SymExpr(Arc::new(Node {
            width,
            sym: Sym::Cast(kind, width, self.clone()),
            bytes: self.0.bytes.clone(),
        }))
    }

    /// Evaluates the expression under the given input-byte assignment
    /// (wrapping machine semantics, no overflow tracking).
    pub fn eval(&self, input: &dyn Fn(u32) -> u8) -> Bv {
        self.eval_overflow(input).0
    }

    /// Evaluates the expression, also reporting whether *any* operation in
    /// the evaluation overflowed its width (including non-value-preserving
    /// truncations). This is the semantic ground truth for the paper's
    /// target constraint: `overflow(B)` is satisfied by an input iff this
    /// flag is true (§4.3).
    pub fn eval_overflow(&self, input: &dyn Fn(u32) -> u8) -> (Bv, bool) {
        match &self.0.sym {
            Sym::Const(bv) => (*bv, false),
            Sym::InputByte(off) => (Bv::byte(input(*off)), false),
            Sym::Un(op, a) => {
                let (av, ao) = a.eval_overflow(input);
                let (v, o) = match op {
                    UnOp::Neg => av.neg(),
                    UnOp::Not => (av.not(), false),
                };
                (v, ao | o)
            }
            Sym::Bin(op, a, b) => {
                let (av, ao) = a.eval_overflow(input);
                let (bv, bo) = b.eval_overflow(input);
                let (v, o) = eval_bin(*op, av, bv);
                (v, ao | bo | o)
            }
            Sym::Cast(kind, w, a) => {
                let (av, ao) = a.eval_overflow(input);
                let (v, o) = match kind {
                    CastKind::Zext => (av.zext(*w), false),
                    CastKind::Sext => (av.sext(*w), false),
                    CastKind::Trunc => av.trunc(*w),
                };
                (v, ao | o)
            }
        }
    }

    /// Number of distinct nodes in the DAG (shared nodes counted once).
    #[must_use]
    pub fn node_count(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        fn walk(e: &SymExpr, seen: &mut std::collections::HashSet<usize>) {
            let ptr = Arc::as_ptr(&e.0) as usize;
            if !seen.insert(ptr) {
                return;
            }
            match &e.0.sym {
                Sym::Const(_) | Sym::InputByte(_) => {}
                Sym::Un(_, a) | Sym::Cast(_, _, a) => walk(a, seen),
                Sym::Bin(_, a, b) => {
                    walk(a, seen);
                    walk(b, seen);
                }
            }
        }
        walk(self, &mut seen);
        seen.len()
    }
}

fn self_neg(bv: Bv) -> Bv {
    bv.neg().0
}

/// Evaluates a binary operation on concrete values, returning the wrapped
/// result and the overflow flag.
#[must_use]
pub fn eval_bin(op: BinOp, a: Bv, b: Bv) -> (Bv, bool) {
    match op {
        BinOp::Add => a.add(b),
        BinOp::Sub => a.sub(b),
        BinOp::Mul => a.mul(b),
        BinOp::UDiv => (a.udiv(b), false),
        BinOp::URem => (a.urem(b), false),
        BinOp::And => (a.and(b), false),
        BinOp::Or => (a.or(b), false),
        BinOp::Xor => (a.xor(b), false),
        BinOp::Shl => a.shl(b),
        BinOp::LShr => (a.lshr(b), false),
        BinOp::AShr => (a.ashr(b), false),
    }
}

impl PartialEq for SymExpr {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
            || (self.0.width == other.0.width && self.0.sym == other.0.sym)
    }
}

impl fmt::Debug for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SymExpr {
    /// Renders in the paper's prefix style, e.g.
    /// `Mul(32, ToSize(32, in[8]), Constant(4))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0.sym {
            Sym::Const(bv) => write!(f, "Constant({:#x})", bv.value()),
            Sym::InputByte(off) => write!(f, "in[{off}]"),
            Sym::Un(UnOp::Neg, a) => write!(f, "Neg({}, {a})", self.0.width),
            Sym::Un(UnOp::Not, a) => write!(f, "BvNot({}, {a})", self.0.width),
            Sym::Bin(op, a, b) => {
                let name = match op {
                    BinOp::Add => "Add",
                    BinOp::Sub => "Sub",
                    BinOp::Mul => "Mul",
                    BinOp::UDiv => "UDiv",
                    BinOp::URem => "URem",
                    BinOp::And => "BvAnd",
                    BinOp::Or => "BvOr",
                    BinOp::Xor => "BvXor",
                    BinOp::Shl => "Shl",
                    BinOp::LShr => "UShr",
                    BinOp::AShr => "SShr",
                };
                write!(f, "{name}({}, {a}, {b})", self.0.width)
            }
            Sym::Cast(kind, w, a) => {
                let name = match kind {
                    CastKind::Zext => "ToSize",
                    CastKind::Sext => "SignExtend",
                    CastKind::Trunc => "Shrink",
                };
                write!(f, "{name}({w}, {a})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn byte(off: u32) -> SymExpr {
        SymExpr::input_byte(off)
    }

    fn c32(v: u32) -> SymExpr {
        SymExpr::constant(Bv::u32(v))
    }

    #[test]
    fn constant_folding() {
        let e = c32(6).bin(BinOp::Mul, c32(7));
        assert_eq!(e.as_const(), Some(Bv::u32(42)));
    }

    #[test]
    fn add_chain_collapses_like_the_paper() {
        // Add32(Add32(Add32(t10, 1), 1), 1) → Add32(t10, 3) (§4.2).
        let t10 = byte(0).cast(CastKind::Zext, 32);
        let one = c32(1);
        let e = t10
            .bin(BinOp::Add, one.clone())
            .bin(BinOp::Add, one.clone())
            .bin(BinOp::Add, one);
        match e.sym() {
            Sym::Bin(BinOp::Add, _, rhs) => assert_eq!(rhs.as_const(), Some(Bv::u32(3))),
            other => panic!("expected collapsed add, got {other:?}"),
        }
        assert_eq!(e.node_count(), 4); // in[0], zext, const 3, add
    }

    #[test]
    fn neutral_elements_are_removed() {
        let x = byte(0).cast(CastKind::Zext, 32);
        assert!(SymExpr::ptr_eq(&x.bin(BinOp::Add, c32(0)), &x));
        assert!(SymExpr::ptr_eq(&x.bin(BinOp::Mul, c32(1)), &x));
        assert!(SymExpr::ptr_eq(&x.bin(BinOp::Or, c32(0)), &x));
        assert!(SymExpr::ptr_eq(&x.bin(BinOp::Shl, c32(0)), &x));
        assert_eq!(x.bin(BinOp::Mul, c32(0)).as_const(), Some(Bv::u32(0)));
        assert_eq!(x.bin(BinOp::And, c32(0)).as_const(), Some(Bv::u32(0)));
        assert!(SymExpr::ptr_eq(
            &x.bin(BinOp::And, SymExpr::constant(Bv::ones(32))),
            &x
        ));
    }

    #[test]
    fn constants_commute_right() {
        let x = byte(0).cast(CastKind::Zext, 32);
        let e = c32(5).bin(BinOp::Add, x.clone());
        match e.sym() {
            Sym::Bin(BinOp::Add, lhs, rhs) => {
                assert!(SymExpr::ptr_eq(lhs, &x));
                assert_eq!(rhs.as_const(), Some(Bv::u32(5)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mul_chain_folds_only_without_wrap() {
        let x = byte(0).cast(CastKind::Zext, 32);
        let e = x.bin(BinOp::Mul, c32(1 << 16)).bin(BinOp::Mul, c32(4));
        match e.sym() {
            Sym::Bin(BinOp::Mul, _, rhs) => assert_eq!(rhs.as_const(), Some(Bv::u32(1 << 18))),
            other => panic!("unexpected {other:?}"),
        }
        // (x * 2^31) * 2 would fold to x*0 — the constant product wraps, so
        // the chain must NOT collapse.
        let e = x.bin(BinOp::Mul, c32(1 << 31)).bin(BinOp::Mul, c32(2));
        match e.sym() {
            Sym::Bin(BinOp::Mul, inner, rhs) => {
                assert_eq!(rhs.as_const(), Some(Bv::u32(2)));
                assert!(matches!(inner.sym(), Sym::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cast_fusion() {
        let x = byte(0); // 8 bits
        let e = x.cast(CastKind::Zext, 16).cast(CastKind::Zext, 32);
        assert!(matches!(e.sym(), Sym::Cast(CastKind::Zext, 32, inner) if inner.width() == 8));
        // trunc back to the original width cancels the zext entirely.
        let e2 = x.cast(CastKind::Zext, 32).cast(CastKind::Trunc, 8);
        assert!(SymExpr::ptr_eq(&e2, &x));
        // trunc to an intermediate width shortens the zext.
        let e3 = x.cast(CastKind::Zext, 32).cast(CastKind::Trunc, 16);
        assert!(matches!(e3.sym(), Sym::Cast(CastKind::Zext, 16, _)));
        // trunc below the original width becomes a trunc of the original.
        let e4 = x.cast(CastKind::Zext, 32).cast(CastKind::Trunc, 4);
        assert!(matches!(e4.sym(), Sym::Cast(CastKind::Trunc, 4, inner) if inner.width() == 8));
    }

    #[test]
    fn double_negation_cancels() {
        let x = byte(0);
        assert!(SymExpr::ptr_eq(&x.un(UnOp::Neg).un(UnOp::Neg), &x));
        assert!(SymExpr::ptr_eq(&x.un(UnOp::Not).un(UnOp::Not), &x));
    }

    #[test]
    fn input_bytes_merge_sorted() {
        let a = byte(9).cast(CastKind::Zext, 32);
        let b = byte(2).cast(CastKind::Zext, 32);
        let c = byte(5).cast(CastKind::Zext, 32);
        let e = a
            .bin(BinOp::Add, b)
            .bin(BinOp::Mul, c)
            .bin(BinOp::Add, byte(2).cast(CastKind::Zext, 32));
        assert_eq!(e.input_bytes(), &[2, 5, 9]);
    }

    #[test]
    fn eval_overflow_tracks_subexpressions() {
        // (in[0] zext32 * 0x0100_0000) * 16 — inner multiply overflows for
        // in[0] >= 16 even though the final value may look harmless.
        let e = byte(0)
            .cast(CastKind::Zext, 32)
            .bin(BinOp::Mul, c32(0x0100_0000))
            .bin(BinOp::Mul, c32(16));
        let (_, ovf) = e.eval_overflow(&|_| 20);
        assert!(ovf, "20 * 2^24 * 16 = 20 * 2^28 > 2^32");
        let (_, ovf) = e.eval_overflow(&|_| 1);
        assert!(!ovf, "1 * 2^24 * 16 = 2^28 fits in 32 bits");
    }

    #[test]
    fn eval_matches_wrapping_semantics() {
        let e = byte(0)
            .cast(CastKind::Zext, 32)
            .bin(BinOp::Mul, c32(0x0200_0000));
        // 200 * 0x2000000 = 0x190000000 wraps to 0x90000000.
        assert_eq!(e.eval(&|_| 200).value(), 0x9000_0000);
        let (_, ovf) = e.eval_overflow(&|_| 200);
        assert!(ovf);
        let (_, ovf) = e.eval_overflow(&|_| 3);
        assert!(!ovf);
    }

    #[test]
    fn trunc_counts_as_overflow_when_lossy() {
        let e = byte(0)
            .cast(CastKind::Zext, 32)
            .bin(BinOp::Mul, c32(2))
            .cast(CastKind::Trunc, 8);
        let (v, ovf) = e.eval_overflow(&|_| 200);
        assert_eq!(v.value(), (400u32 & 0xff) as u128);
        assert!(ovf);
        let (_, ovf) = e.eval_overflow(&|_| 100);
        assert!(!ovf);
    }

    #[test]
    fn display_uses_paper_notation() {
        let e = byte(4).cast(CastKind::Zext, 32).bin(BinOp::Shl, c32(24));
        let s = e.to_string();
        assert!(s.contains("Shl(32"), "{s}");
        assert!(s.contains("ToSize(32, in[4])"), "{s}");
        assert!(s.contains("Constant(0x18)"), "{s}");
    }
}
