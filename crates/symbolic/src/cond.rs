//! Symbolic boolean conditions.
//!
//! A [`SymBool`] characterises how the program computes a branch condition
//! (or how DIODE expresses a target constraint) as a predicate over input
//! bytes. Branch conditions recorded along the seed path (the φ sequence of
//! §3.2) are `SymBool`s; the target constraint β produced by
//! [`crate::overflow_condition`] is a `SymBool` too, built from the atomic
//! overflow predicates in [`OvfKind`].

use std::fmt;
use std::sync::Arc;

use diode_lang::{BinOp, Bv, CastKind, CmpOp, UnOp};

use crate::expr::{eval_bin, Sym, SymExpr};

/// Atomic "this operation overflows" predicates. The solver encodes these
/// exactly (widened arithmetic at the bit level); concrete evaluation uses
/// the corresponding [`Bv`] operation flags, so the two semantics agree by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OvfKind {
    /// Unsigned addition overflow: ideal sum ≥ 2^w.
    Add,
    /// Unsigned subtraction underflow: a < b.
    Sub,
    /// Unsigned multiplication overflow: ideal product ≥ 2^w.
    Mul,
    /// Left-shift overflow: nonzero bits shifted out (or shift ≥ width of a
    /// nonzero value).
    Shl,
    /// Negation of a nonzero value (wraps under unsigned semantics).
    Neg,
    /// Non-value-preserving truncation to the given width (`Shrink`).
    Trunc(u8),
}

/// A symbolic boolean condition (cheap to clone; sub-conditions shared).
#[derive(Clone, PartialEq)]
pub enum SymBool {
    /// Constant truth value.
    Const(bool),
    /// Comparison of two equal-width expressions.
    Cmp(CmpOp, SymExpr, SymExpr),
    /// Logical negation.
    Not(Arc<SymBool>),
    /// Conjunction.
    And(Arc<SymBool>, Arc<SymBool>),
    /// Disjunction.
    Or(Arc<SymBool>, Arc<SymBool>),
    /// Atomic overflow predicate on an operation's operands. For unary
    /// kinds ([`OvfKind::Neg`], [`OvfKind::Trunc`]) the second operand is
    /// ignored and conventionally equals the first.
    Ovf(OvfKind, SymExpr, SymExpr),
}

impl SymBool {
    /// Builds a comparison, folding constant operands.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    #[must_use]
    pub fn cmp(op: CmpOp, lhs: SymExpr, rhs: SymExpr) -> SymBool {
        assert_eq!(lhs.width(), rhs.width(), "comparison width mismatch");
        if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
            return SymBool::Const(op.eval(a, b));
        }
        SymBool::Cmp(op, lhs, rhs)
    }

    /// Logical negation with double-negation elimination and constant
    /// folding. Comparisons are negated in place (`<` ↔ `>=`), which keeps
    /// recorded not-taken branch conditions small.
    #[must_use]
    pub fn negate(&self) -> SymBool {
        match self {
            SymBool::Const(b) => SymBool::Const(!b),
            SymBool::Not(inner) => (**inner).clone(),
            SymBool::Cmp(op, a, b) => SymBool::Cmp(op.negated(), a.clone(), b.clone()),
            other => SymBool::Not(Arc::new(other.clone())),
        }
    }

    /// Conjunction with constant folding.
    #[must_use]
    pub fn and(&self, rhs: &SymBool) -> SymBool {
        match (self, rhs) {
            (SymBool::Const(false), _) | (_, SymBool::Const(false)) => SymBool::Const(false),
            (SymBool::Const(true), other) | (other, SymBool::Const(true)) => other.clone(),
            (a, b) => SymBool::And(Arc::new(a.clone()), Arc::new(b.clone())),
        }
    }

    /// Disjunction with constant folding.
    #[must_use]
    pub fn or(&self, rhs: &SymBool) -> SymBool {
        match (self, rhs) {
            (SymBool::Const(true), _) | (_, SymBool::Const(true)) => SymBool::Const(true),
            (SymBool::Const(false), other) | (other, SymBool::Const(false)) => other.clone(),
            (a, b) => SymBool::Or(Arc::new(a.clone()), Arc::new(b.clone())),
        }
    }

    /// Evaluates the condition under an input-byte assignment. Branch
    /// decisions use wrapped machine values (overflow predicates evaluate
    /// via the operation flags).
    ///
    /// Iterative over the connective spine: compressed loop conditions are
    /// conjunctions with thousands of links, so recursion depth must not
    /// scale with occurrence counts.
    pub fn eval(&self, input: &dyn Fn(u32) -> u8) -> bool {
        enum Task<'a> {
            Visit(&'a SymBool),
            Not,
            And,
            Or,
        }
        let mut tasks = vec![Task::Visit(self)];
        let mut values: Vec<bool> = Vec::new();
        while let Some(task) = tasks.pop() {
            match task {
                Task::Visit(node) => match node {
                    SymBool::Const(b) => values.push(*b),
                    SymBool::Cmp(op, a, b) => values.push(op.eval(a.eval(input), b.eval(input))),
                    SymBool::Not(inner) => {
                        tasks.push(Task::Not);
                        tasks.push(Task::Visit(inner));
                    }
                    SymBool::And(a, b) => {
                        tasks.push(Task::And);
                        tasks.push(Task::Visit(a));
                        tasks.push(Task::Visit(b));
                    }
                    SymBool::Or(a, b) => {
                        tasks.push(Task::Or);
                        tasks.push(Task::Visit(a));
                        tasks.push(Task::Visit(b));
                    }
                    SymBool::Ovf(kind, a, b) => {
                        let av = a.eval(input);
                        values.push(match kind {
                            OvfKind::Add => av.add(b.eval(input)).1,
                            OvfKind::Sub => av.sub(b.eval(input)).1,
                            OvfKind::Mul => av.mul(b.eval(input)).1,
                            OvfKind::Shl => av.shl(b.eval(input)).1,
                            OvfKind::Neg => av.neg().1,
                            OvfKind::Trunc(w) => av.trunc(*w).1,
                        });
                    }
                },
                Task::Not => {
                    let v = values.pop().expect("operand");
                    values.push(!v);
                }
                Task::And => {
                    let (a, b) = (values.pop().expect("lhs"), values.pop().expect("rhs"));
                    values.push(a && b);
                }
                Task::Or => {
                    let (a, b) = (values.pop().expect("lhs"), values.pop().expect("rhs"));
                    values.push(a || b);
                }
            }
        }
        values.pop().expect("result")
    }

    /// Sorted input-byte offsets this condition depends on.
    #[must_use]
    pub fn input_bytes(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_bytes(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_bytes(&self, out: &mut Vec<u32>) {
        // Iterative: connective spines can be thousands of links deep.
        let mut stack: Vec<&SymBool> = vec![self];
        while let Some(node) = stack.pop() {
            match node {
                SymBool::Const(_) => {}
                SymBool::Cmp(_, a, b) | SymBool::Ovf(_, a, b) => {
                    out.extend_from_slice(a.input_bytes());
                    out.extend_from_slice(b.input_bytes());
                }
                SymBool::Not(inner) => stack.push(inner),
                SymBool::And(a, b) | SymBool::Or(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
    }

    /// True if the condition references at least one of the given sorted
    /// byte offsets. This is the paper's *relevance* test: "a condition is
    /// relevant to a target constraint β if they share the same input
    /// variable" (§3.3).
    #[must_use]
    pub fn intersects_bytes(&self, sorted: &[u32]) -> bool {
        self.input_bytes()
            .iter()
            .any(|b| sorted.binary_search(b).is_ok())
    }
}

impl fmt::Debug for SymBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SymBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymBool::Const(b) => write!(f, "{b}"),
            SymBool::Cmp(op, a, b) => {
                let name = match op {
                    CmpOp::Eq => "Eq",
                    CmpOp::Ne => "Ne",
                    CmpOp::Ult => "Ult",
                    CmpOp::Ule => "Ule",
                    CmpOp::Ugt => "Ugt",
                    CmpOp::Uge => "Uge",
                    CmpOp::Slt => "Slt",
                    CmpOp::Sle => "Sle",
                    CmpOp::Sgt => "Sgt",
                    CmpOp::Sge => "Sge",
                };
                write!(f, "{name}({a}, {b})")
            }
            SymBool::Not(inner) => write!(f, "Not({inner})"),
            SymBool::And(a, b) => write!(f, "And({a}, {b})"),
            SymBool::Or(a, b) => write!(f, "Or({a}, {b})"),
            SymBool::Ovf(kind, a, b) => match kind {
                OvfKind::Neg => write!(f, "OvfNeg({a})"),
                OvfKind::Trunc(w) => write!(f, "OvfShrink({w}, {a})"),
                OvfKind::Add => write!(f, "OvfAdd({a}, {b})"),
                OvfKind::Sub => write!(f, "OvfSub({a}, {b})"),
                OvfKind::Mul => write!(f, "OvfMul({a}, {b})"),
                OvfKind::Shl => write!(f, "OvfShl({a}, {b})"),
            },
        }
    }
}

/// Derives the target constraint β = `overflow(B)` from a target expression
/// `B` (§3.3, §4.3).
///
/// The result is satisfied by an input iff *some* operation in the
/// evaluation of `B` overflows: a disjunction of atomic overflow predicates
/// over every arithmetic node (add, sub, mul, shl, neg) and every
/// truncation in the expression DAG, in deterministic post-order. The
/// paper's §4.3 example — `((w16 × h16) × 4) / bpp` — is covered because
/// the inner multiplication contributes its own disjunct even though the
/// final division result may be small.
///
/// Returns `SymBool::Const(false)` (unsatisfiable) when the expression
/// contains no overflowing operation — e.g. a constant allocation size or
/// pure byte reassembly, which is how 17 of the paper's 40 target sites are
/// classified (Table 1, "Target Constraint Unsatisfiable" plus structurally
/// safe arithmetic).
#[must_use]
pub fn overflow_condition(expr: &SymExpr) -> SymBool {
    let mut seen = std::collections::HashSet::new();
    let mut atoms = Vec::new();
    collect_overflow_atoms(expr, &mut seen, &mut atoms);
    let mut cond = SymBool::Const(false);
    for atom in atoms {
        cond = cond.or(&atom);
    }
    cond
}

fn collect_overflow_atoms(
    expr: &SymExpr,
    seen: &mut std::collections::HashSet<usize>,
    atoms: &mut Vec<SymBool>,
) {
    let ptr = expr_ptr(expr);
    if !seen.insert(ptr) {
        return;
    }
    match expr.sym() {
        Sym::Const(_) | Sym::InputByte(_) => {}
        Sym::Un(op, a) => {
            collect_overflow_atoms(a, seen, atoms);
            if *op == UnOp::Neg && a.input_bytes().is_empty() {
                // Constant negation: decide statically.
                if let Some(bv) = const_eval(a) {
                    if bv.neg().1 {
                        atoms.push(SymBool::Const(true));
                    }
                    return;
                }
            }
            if *op == UnOp::Neg {
                atoms.push(SymBool::Ovf(OvfKind::Neg, a.clone(), a.clone()));
            }
        }
        Sym::Bin(op, a, b) => {
            collect_overflow_atoms(a, seen, atoms);
            collect_overflow_atoms(b, seen, atoms);
            let kind = match op {
                BinOp::Add => Some(OvfKind::Add),
                BinOp::Sub => Some(OvfKind::Sub),
                BinOp::Mul => Some(OvfKind::Mul),
                BinOp::Shl => Some(OvfKind::Shl),
                _ => None,
            };
            if let Some(kind) = kind {
                // Statically decidable atoms fold away (e.g. `x + 2` at
                // width 32 where x is one byte can never overflow — but
                // `x + 2` where x is a full 32-bit field can).
                if let Some(decided) = static_ovf(kind, a, b) {
                    if decided {
                        atoms.push(SymBool::Const(true));
                    }
                } else {
                    atoms.push(SymBool::Ovf(kind, a.clone(), b.clone()));
                }
            }
        }
        Sym::Cast(kind, w, a) => {
            collect_overflow_atoms(a, seen, atoms);
            if *kind == CastKind::Trunc {
                if let Some(max) = unsigned_max(a) {
                    // Truncation that provably keeps the value is not an
                    // overflow atom.
                    if max <= Bv::mask(*w) {
                        return;
                    }
                }
                atoms.push(SymBool::Ovf(OvfKind::Trunc(*w), a.clone(), a.clone()));
            }
        }
    }
}

fn expr_ptr(e: &SymExpr) -> usize {
    // Two structurally equal but distinct nodes may both be visited; that
    // only duplicates atoms, and `or` keeps the formula linear in DAG size.
    e.sym() as *const Sym as usize
}

fn const_eval(e: &SymExpr) -> Option<Bv> {
    e.as_const()
}

/// Cheap unsigned upper bound of an expression's value, used to discharge
/// statically-safe operations. Returns `None` when no useful bound exists.
fn unsigned_max(e: &SymExpr) -> Option<u128> {
    match e.sym() {
        Sym::Const(bv) => Some(bv.value()),
        Sym::InputByte(_) => Some(0xff),
        Sym::Cast(CastKind::Zext, _, a) => unsigned_max(a),
        Sym::Cast(CastKind::Trunc, w, _) => Some(Bv::mask(*w)),
        Sym::Bin(op, a, b) => {
            let (ma, mb) = (unsigned_max(a)?, unsigned_max(b)?);
            let w = e.width();
            match op {
                BinOp::Add => ma.checked_add(mb).filter(|&v| v <= Bv::mask(w)),
                BinOp::Mul => ma.checked_mul(mb).filter(|&v| v <= Bv::mask(w)),
                BinOp::And => Some(ma.min(mb)),
                BinOp::Or | BinOp::Xor => {
                    // Bounded by the next power of two covering both.
                    let bits = 128 - ma.max(mb).leading_zeros();
                    Some(if bits >= 128 {
                        u128::MAX
                    } else {
                        (1u128 << bits) - 1
                    })
                }
                BinOp::UDiv => {
                    // Division by zero yields all-ones (SMT-LIB), which can
                    // exceed the dividend: the bound only holds when the
                    // divisor is provably nonzero.
                    if b.as_const().is_some_and(|c| !c.is_zero()) {
                        Some(ma)
                    } else {
                        None
                    }
                }
                // The remainder never exceeds the dividend, including the
                // zero-divisor case (urem(a, 0) = a).
                BinOp::URem => Some(ma),
                BinOp::LShr => Some(ma),
                BinOp::Shl => {
                    let shift = b.as_const()?.value();
                    ma.checked_shl(u32::try_from(shift).ok()?)
                        .filter(|&v| v <= Bv::mask(w))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Decides an overflow atom statically when possible.
fn static_ovf(kind: OvfKind, a: &SymExpr, b: &SymExpr) -> Option<bool> {
    if let (Some(av), Some(bv)) = (a.as_const(), b.as_const()) {
        return Some(match kind {
            OvfKind::Add => av.add(bv).1,
            OvfKind::Sub => av.sub(bv).1,
            OvfKind::Mul => av.mul(bv).1,
            OvfKind::Shl => av.shl(bv).1,
            OvfKind::Neg => av.neg().1,
            OvfKind::Trunc(w) => av.trunc(w).1,
        });
    }
    let w = a.width();
    match kind {
        OvfKind::Add => {
            let (ma, mb) = (unsigned_max(a)?, unsigned_max(b)?);
            (ma.checked_add(mb)? <= Bv::mask(w)).then_some(false)
        }
        OvfKind::Mul => {
            let (ma, mb) = (unsigned_max(a)?, unsigned_max(b)?);
            (ma.checked_mul(mb)? <= Bv::mask(w)).then_some(false)
        }
        OvfKind::Shl => {
            let ma = unsigned_max(a)?;
            let shift = b.as_const()?.value();
            let shifted = ma.checked_shl(u32::try_from(shift).ok()?)?;
            (shifted <= Bv::mask(w)).then_some(false)
        }
        OvfKind::Sub => {
            // a - b never underflows if min(a) >= max(b); we only know
            // maxima, so only the trivial b == 0 case is decidable.
            b.as_const().and_then(|bv| bv.is_zero().then_some(false))
        }
        _ => None,
    }
}

/// Evaluates a binary operation as the solver will see it (re-exported for
/// cross-checking in tests).
#[must_use]
pub fn concrete_bin(op: BinOp, a: Bv, b: Bv) -> (Bv, bool) {
    eval_bin(op, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn byte32(off: u32) -> SymExpr {
        SymExpr::input_byte(off).cast(CastKind::Zext, 32)
    }

    fn c32(v: u32) -> SymExpr {
        SymExpr::constant(Bv::u32(v))
    }

    fn field32(base: u32) -> SymExpr {
        // Big-endian 4-byte field: full 32-bit range.
        let b0 = byte32(base).bin(BinOp::Shl, c32(24));
        let b1 = byte32(base + 1).bin(BinOp::Shl, c32(16));
        let b2 = byte32(base + 2).bin(BinOp::Shl, c32(8));
        let b3 = byte32(base + 3);
        b0.bin(BinOp::Or, b1).bin(BinOp::Or, b2).bin(BinOp::Or, b3)
    }

    #[test]
    fn cmp_folds_constants() {
        let c = SymBool::cmp(CmpOp::Ult, c32(3), c32(5));
        assert_eq!(c, SymBool::Const(true));
    }

    #[test]
    fn negate_flips_comparisons_in_place() {
        let c = SymBool::cmp(CmpOp::Ult, byte32(0), c32(5));
        match c.negate() {
            SymBool::Cmp(CmpOp::Uge, _, _) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.negate().negate(), c);
    }

    #[test]
    fn and_or_fold() {
        let t = SymBool::Const(true);
        let f = SymBool::Const(false);
        let c = SymBool::cmp(CmpOp::Eq, byte32(0), c32(5));
        assert_eq!(t.and(&c), c);
        assert_eq!(f.and(&c), SymBool::Const(false));
        assert_eq!(f.or(&c), c);
        assert_eq!(t.or(&c), SymBool::Const(true));
    }

    #[test]
    fn eval_respects_shortcircuit_semantics() {
        let c = SymBool::cmp(CmpOp::Ugt, byte32(0), c32(10)).and(&SymBool::cmp(
            CmpOp::Ult,
            byte32(1),
            c32(4),
        ));
        assert!(c.eval(&|off| if off == 0 { 20 } else { 2 }));
        assert!(!c.eval(&|off| if off == 0 { 5 } else { 2 }));
    }

    #[test]
    fn input_bytes_dedup() {
        let c = SymBool::cmp(CmpOp::Eq, byte32(3), byte32(3).bin(BinOp::Add, c32(1)));
        assert_eq!(c.input_bytes(), vec![3]);
        assert!(c.intersects_bytes(&[1, 3, 9]));
        assert!(!c.intersects_bytes(&[1, 2, 9]));
    }

    #[test]
    fn overflow_condition_of_pure_reassembly_is_unsat() {
        // Endianness reassembly alone cannot overflow: shifts provably
        // lose no bits, `or` has no overflow atom.
        let beta = overflow_condition(&field32(0));
        assert_eq!(beta, SymBool::Const(false));
    }

    #[test]
    fn overflow_condition_of_byte_times_small_const_is_unsat() {
        // in[0] (≤ 255) * 4 at width 32 provably fits.
        let e = byte32(0).bin(BinOp::Mul, c32(4));
        assert_eq!(overflow_condition(&e), SymBool::Const(false));
    }

    #[test]
    fn overflow_condition_of_field_mul_is_satisfiable_and_correct() {
        let e = field32(0).bin(BinOp::Mul, field32(4));
        let beta = overflow_condition(&e);
        assert_ne!(beta, SymBool::Const(false));
        // Semantic agreement: β holds iff evaluation overflows.
        let big = |off: u32| if off < 4 { 0xff } else { 0x01 };
        let small = |off: u32| if off == 3 || off == 7 { 2 } else { 0 };
        assert_eq!(beta.eval(&big), e.eval_overflow(&big).1);
        assert!(beta.eval(&big));
        assert_eq!(beta.eval(&small), e.eval_overflow(&small).1);
        assert!(!beta.eval(&small));
    }

    #[test]
    fn overflow_condition_catches_subexpression_overflow() {
        // ((w16 × h16) × 4) >> 8: the shift keeps the final value small but
        // the inner multiply still overflows (§4.3's example, with >> for /).
        let w16 = SymExpr::input_byte(0)
            .cast(CastKind::Zext, 16)
            .bin(BinOp::Shl, SymExpr::constant(Bv::new(16, 8)))
            .bin(BinOp::Or, SymExpr::input_byte(1).cast(CastKind::Zext, 16))
            .cast(CastKind::Zext, 32);
        let h16 = SymExpr::input_byte(2)
            .cast(CastKind::Zext, 16)
            .bin(BinOp::Shl, SymExpr::constant(Bv::new(16, 8)))
            .bin(BinOp::Or, SymExpr::input_byte(3).cast(CastKind::Zext, 16))
            .cast(CastKind::Zext, 32);
        let e = w16
            .bin(BinOp::Mul, h16)
            .bin(BinOp::Mul, c32(4))
            .bin(BinOp::LShr, c32(8));
        let beta = overflow_condition(&e);
        let big = |_: u32| 0xffu8;
        assert!(beta.eval(&big));
        assert_eq!(beta.eval(&big), e.eval_overflow(&big).1);
    }

    #[test]
    fn cve_2008_2430_shape_x_plus_2() {
        // Target expression x + 2 where x is a full 32-bit field: exactly
        // two overflowing values (0xFFFFFFFE, 0xFFFFFFFF) — §5.5.
        let e = field32(0).bin(BinOp::Add, c32(2));
        let beta = overflow_condition(&e);
        assert!(matches!(beta, SymBool::Ovf(OvfKind::Add, _, _)));
        let make = |v: u32| move |off: u32| (v >> (8 * (3 - off))) as u8;
        assert!(beta.eval(&make(0xffff_fffe)));
        assert!(beta.eval(&make(0xffff_ffff)));
        assert!(!beta.eval(&make(0xffff_fffd)));
        assert!(!beta.eval(&make(0)));
    }

    #[test]
    fn display_is_readable() {
        let e = field32(0).bin(BinOp::Mul, c32(3));
        let beta = overflow_condition(&e);
        let s = beta.to_string();
        assert!(s.starts_with("OvfMul("), "{s}");
    }
}
