//! Property tests for the symbolic layer:
//!
//! * construction-time simplification preserves evaluation (values always;
//!   and for the rewrites we rely on, the overflow verdict of β as well);
//! * `overflow_condition` agrees with `eval_overflow` — β(input) holds iff
//!   evaluating the expression on that input overflows.

use diode_lang::{BinOp, Bv, CastKind};
use diode_symbolic::{overflow_condition, SymExpr};
use proptest::prelude::*;

/// A recipe for building a random 32-bit expression over 4 input bytes.
#[derive(Debug, Clone)]
enum Recipe {
    Byte(u32),
    Const(u32),
    Bin(BinOp, Box<Recipe>, Box<Recipe>),
    TruncZext(Box<Recipe>),
}

fn build(r: &Recipe) -> SymExpr {
    match r {
        Recipe::Byte(o) => SymExpr::input_byte(*o).cast(CastKind::Zext, 32),
        Recipe::Const(v) => SymExpr::constant(Bv::u32(*v)),
        Recipe::Bin(op, a, b) => build(a).bin(*op, build(b)),
        Recipe::TruncZext(a) => build(a).cast(CastKind::Trunc, 16).cast(CastKind::Zext, 32),
    }
}

/// Reference evaluation performed directly on the recipe (no
/// simplification), tracking sticky overflow.
fn eval_ref(r: &Recipe, input: &[u8; 4]) -> (u32, bool) {
    match r {
        Recipe::Byte(o) => (u32::from(input[*o as usize % 4]), false),
        Recipe::Const(v) => (*v, false),
        Recipe::Bin(op, a, b) => {
            let (av, ao) = eval_ref(a, input);
            let (bv, bo) = eval_ref(b, input);
            let (x, y) = (Bv::u32(av), Bv::u32(bv));
            let (v, o) = diode_symbolic::eval_bin(*op, x, y);
            (v.value() as u32, ao | bo | o)
        }
        Recipe::TruncZext(a) => {
            let (av, ao) = eval_ref(a, input);
            (av & 0xffff, ao | (av > 0xffff))
        }
    }
}

fn arb_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::UDiv),
        Just(BinOp::URem),
    ]
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![
        (0u32..4).prop_map(Recipe::Byte),
        (0u32..0x200).prop_map(Recipe::Const),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (arb_op(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Recipe::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner.prop_map(|a| Recipe::TruncZext(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simplified_expression_preserves_value(r in arb_recipe(), input: [u8; 4]) {
        let expr = build(&r);
        let (ref_v, _) = eval_ref(&r, &input);
        let got = expr.eval(&|o| input[o as usize % 4]);
        prop_assert_eq!(got.value() as u32, ref_v);
    }

    #[test]
    fn beta_agrees_with_eval_overflow(r in arb_recipe(), input: [u8; 4]) {
        let expr = build(&r);
        let beta = overflow_condition(&expr);
        let lookup = |o: u32| input[o as usize % 4];
        let (_, ovf) = expr.eval_overflow(&lookup);
        prop_assert_eq!(
            beta.eval(&lookup), ovf,
            "β and eval_overflow must agree on {}", expr
        );
    }

    #[test]
    fn input_bytes_are_exactly_the_leaves(r in arb_recipe()) {
        let expr = build(&r);
        fn leaves(r: &Recipe, out: &mut Vec<u32>) {
            match r {
                Recipe::Byte(o) => out.push(*o % 4),
                Recipe::Const(_) => {}
                Recipe::Bin(_, a, b) => {
                    leaves(a, out);
                    leaves(b, out);
                }
                Recipe::TruncZext(a) => leaves(a, out),
            }
        }
        let mut expected = Vec::new();
        leaves(&r, &mut expected);
        expected.sort_unstable();
        expected.dedup();
        // Simplification may *remove* dependence (x*0, x^x, …) but can
        // never invent new input bytes.
        for b in expr.input_bytes() {
            prop_assert!(expected.contains(b));
        }
    }

    #[test]
    fn negate_is_involutive_and_complements(r in arb_recipe(), input: [u8; 4]) {
        let expr = build(&r);
        let beta = overflow_condition(&expr);
        let lookup = |o: u32| input[o as usize % 4];
        prop_assert_eq!(beta.negate().eval(&lookup), !beta.eval(&lookup));
        prop_assert_eq!(beta.negate().negate().eval(&lookup), beta.eval(&lookup));
    }
}
