//! Property tests for the interpreter: the three shadow policies agree
//! with each other and with the recorded symbolic artefacts.
//!
//! These validate the Figure 4–6 semantics pairing: for every run, the
//! concrete half and the symbolic half of each value must describe the
//! same computation.

use diode_interp::{run, Concrete, MachineConfig, Symbolic, Taint};
use diode_lang::parse;
use proptest::prelude::*;

/// A parametric parser: reads fields, checks one of them, computes a
/// derived size, allocates and touches the buffer.
const PROGRAM: &str = r#"
    fn main() {
        a = zext32(in[0]) << 8 | zext32(in[1]);
        b = zext32(in[2]);
        c = zext32(in[3]) | zext32(in[4]) << 8;
        if a > 60000 { error("a out of range"); }
        size = (a * b + 7 >> 3) * c + 16;
        buf = alloc("prop@7", size);
        if buf == 0 { error("oom"); }
        i = 0;
        while i < size && i < 64 {
            buf[zext64(i)] = trunc8(i & 0xff);
            i = i + 1;
        }
        x = buf[0u64];
        free(buf);
    }
"#;

fn reference_size(input: &[u8; 5]) -> (u32, bool) {
    let a = u32::from(input[0]) << 8 | u32::from(input[1]);
    let b = u32::from(input[2]);
    let c = u32::from(input[3]) | u32::from(input[4]) << 8;
    let (ab, o1) = a.overflowing_mul(b);
    let (ab7, o2) = ab.overflowing_add(7);
    let rb = ab7 >> 3;
    let (rc, o3) = rb.overflowing_mul(c);
    let (s, o4) = rc.overflowing_add(16);
    (s, o1 | o2 | o3 | o4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn shadows_agree_on_outcome_and_sizes(input: [u8; 5]) {
        let program = parse(PROGRAM).unwrap();
        let cfg = MachineConfig::default();
        let concrete = run(&program, &input, Concrete, &cfg);
        let taint = run(&program, &input, Taint, &cfg);
        let symbolic = run(&program, &input, Symbolic::all_bytes(), &cfg);

        prop_assert_eq!(&concrete.outcome, &taint.outcome);
        prop_assert_eq!(&concrete.outcome, &symbolic.outcome);
        prop_assert_eq!(concrete.allocs.len(), symbolic.allocs.len());
        prop_assert_eq!(concrete.steps, symbolic.steps);

        for (c, s) in concrete.allocs.iter().zip(&symbolic.allocs) {
            prop_assert_eq!(c.size, s.size);
            prop_assert_eq!(c.size_ovf, s.size_ovf);
        }
    }

    #[test]
    fn sticky_overflow_matches_reference(input: [u8; 5]) {
        let program = parse(PROGRAM).unwrap();
        let cfg = MachineConfig::default();
        let r = run(&program, &input, Concrete, &cfg);
        if let Some(a) = r.allocs.first() {
            let (size, ovf) = reference_size(&input);
            prop_assert_eq!(a.size.value() as u32, size);
            prop_assert_eq!(a.size_ovf, ovf);
        }
    }

    #[test]
    fn recorded_expression_replays_any_input(seed: [u8; 5], other: [u8; 5]) {
        // Record on `seed`, then evaluate the recorded expression under
        // `other`: it must predict the size the program would compute on
        // `other` *when following the same path* — and for this
        // straight-line size computation the path never changes.
        let program = parse(PROGRAM).unwrap();
        let cfg = MachineConfig::default();
        let rec = run(&program, &seed, Symbolic::all_bytes(), &cfg);
        prop_assume!(!rec.allocs.is_empty());
        let expr = rec.allocs[0].size_tag.as_ref().expect("symbolic size");
        let predicted = expr.eval(&|o| other[o as usize % 5]);
        let (expected, expected_ovf) = reference_size(&other);
        prop_assert_eq!(predicted.value() as u32, expected);
        prop_assert_eq!(expr.eval_overflow(&|o| other[o as usize % 5]).1, expected_ovf);
    }

    #[test]
    fn taint_labels_are_a_superset_of_symbolic_bytes(input: [u8; 5]) {
        let program = parse(PROGRAM).unwrap();
        let cfg = MachineConfig::default();
        let taint = run(&program, &input, Taint, &cfg);
        let symbolic = run(&program, &input, Symbolic::all_bytes(), &cfg);
        for (t, s) in taint.allocs.iter().zip(&symbolic.allocs) {
            if let Some(expr) = &s.size_tag {
                // Symbolic simplification may drop dependence; taint never
                // invents it the other way.
                for b in expr.input_bytes() {
                    prop_assert!(t.size_tag.labels().contains(b));
                }
            }
        }
    }

    #[test]
    fn branch_constraints_hold_on_their_own_run(input: [u8; 5]) {
        let program = parse(PROGRAM).unwrap();
        let cfg = MachineConfig::default();
        let r = run(&program, &input, Symbolic::all_bytes(), &cfg);
        // Every recorded oriented branch constraint must be satisfied by
        // the very input that produced it.
        for obs in &r.branches {
            if let Some(c) = &obs.constraint {
                prop_assert!(
                    c.eval(&|o| input[o as usize % 5]),
                    "constraint {} not satisfied by its own run",
                    c
                );
            }
        }
    }
}
