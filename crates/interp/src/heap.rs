//! Memcheck-style simulated heap.
//!
//! The paper detects triggered overflows indirectly, through their effect
//! on the computation: "invalid reads and writes" reported by Valgrind's
//! memcheck, or outright crashes (§4.6, Table 2's *Error Type* column).
//! This module reproduces that behaviour:
//!
//! * every allocation is an isolated block with an exact byte size;
//! * reads/writes past the block (but within a red zone) are recorded as
//!   [`MemErrorKind::InvalidRead`]/[`MemErrorKind::InvalidWrite`] and the
//!   program continues — like memcheck;
//! * accesses far outside any block (beyond the red zone), and any access
//!   through null, escalate to a segmentation fault;
//! * use-after-free and double-free are recorded;
//! * allocation sizes ≥ the allocator limit fail (null return or abort,
//!   depending on the site's wrapper, matching `malloc` vs `g_malloc`).
//!
//! Block payloads are stored densely for ordinary sizes and sparsely for
//! huge allocations, so simulating a 2 GB allocation costs no host memory.

use std::collections::HashMap;
use std::sync::Arc;

use diode_lang::{Bv, Label};

use crate::value::BlockId;

thread_local! {
    /// Largest heap high-water mark of any run finished on this thread
    /// since the last [`take_peak_heap_bytes`] call. The machine notes
    /// every run's peak here so campaign drivers can attribute peak
    /// interpreter memory to a site without threading a gauge through
    /// every entry point.
    static PEAK_HEAP: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Folds one finished run's heap peak into the thread-local gauge.
pub(crate) fn note_peak_heap_bytes(bytes: u64) {
    PEAK_HEAP.with(|p| p.set(p.get().max(bytes)));
}

/// Reads and resets this thread's peak-heap gauge: the largest heap
/// high-water mark among runs finished on this thread since the last
/// call. Zero when no run finished in the window.
#[must_use]
pub fn take_peak_heap_bytes() -> u64 {
    PEAK_HEAP.with(|p| p.replace(0))
}

/// Kinds of memory errors detected by the heap monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemErrorKind {
    /// Read past the end of a live block (within the red zone).
    InvalidRead,
    /// Write past the end of a live block (within the red zone).
    InvalidWrite,
    /// Read through a pointer to a freed block.
    UseAfterFreeRead,
    /// Write through a pointer to a freed block.
    UseAfterFreeWrite,
    /// Second `free` of the same block.
    DoubleFree,
}

/// A recorded memory error (one memcheck report line).
#[derive(Debug, Clone)]
pub struct MemError {
    /// What happened.
    pub kind: MemErrorKind,
    /// The allocation site of the affected block.
    pub site: Arc<str>,
    /// Offset of the access relative to the block base.
    pub offset: u64,
    /// Size of the affected block at allocation time.
    pub block_size: u32,
    /// Label of the statement performing the access.
    pub at: Label,
}

/// Reason the heap monitor escalated to a fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Access through the null pointer.
    NullDeref {
        /// Label of the faulting statement.
        at: Label,
    },
    /// Access far beyond a block's red zone.
    WildAccess {
        /// Label of the faulting statement.
        at: Label,
        /// Offset of the attempted access.
        offset: u64,
        /// Size of the block being overrun.
        block_size: u32,
    },
}

/// One byte cell: value, sticky overflow flag, shadow tag.
#[derive(Debug, Clone)]
pub struct Cell<T> {
    /// Stored byte (8-bit).
    pub value: Bv,
    /// Sticky overflow flag of the stored value.
    pub ovf: bool,
    /// Shadow tag of the stored value.
    pub tag: T,
}

impl<T: Default> Default for Cell<T> {
    fn default() -> Self {
        Cell {
            value: Bv::byte(0),
            ovf: false,
            tag: T::default(),
        }
    }
}

/// Block payloads sit behind `Arc`s so cloning a whole heap — the
/// prefix-snapshot operation — is O(blocks), not O(bytes): the payloads
/// are shared and only copied again when a post-snapshot write lands in
/// them (`Arc::make_mut` copy-on-write).
enum Payload<T> {
    Dense(Arc<Vec<Cell<T>>>),
    Sparse(Arc<HashMap<u64, Cell<T>>>),
}

impl<T: Clone> Clone for Payload<T> {
    fn clone(&self) -> Self {
        match self {
            Payload::Dense(cells) => Payload::Dense(Arc::clone(cells)),
            Payload::Sparse(cells) => Payload::Sparse(Arc::clone(cells)),
        }
    }
}

struct Block<T> {
    site: Arc<str>,
    size: u32,
    freed: bool,
    payload: Payload<T>,
    /// Approximate bytes charged to the heap gauge for this block's
    /// payload (dense: size × cell; sparse: grows per touched cell).
    accounted: u64,
}

impl<T: Clone> Clone for Block<T> {
    fn clone(&self) -> Self {
        Block {
            site: self.site.clone(),
            size: self.size,
            freed: self.freed,
            payload: self.payload.clone(),
            accounted: self.accounted,
        }
    }
}

/// Fixed per-block bookkeeping charge (site arc, size, flags, vec slot).
const BLOCK_OVERHEAD_BYTES: u64 = 48;

/// Extra charge per sparse cell beyond the cell itself (hash-map key +
/// bucket overhead).
const SPARSE_CELL_OVERHEAD_BYTES: u64 = 16;

/// Outcome of a heap access: either a value (reads) / unit (writes), plus
/// any recorded error; or a fault that must halt the program.
pub type AccessResult<V> = Result<V, Fault>;

/// The simulated heap.
pub struct Heap<T> {
    blocks: Vec<Block<T>>,
    errors: Vec<MemError>,
    /// Single-allocation limit: requests of at least this many bytes fail.
    alloc_limit: u64,
    /// Accesses past `size + redzone` fault instead of being recorded.
    redzone: u64,
    /// Block payloads at most this large are stored densely.
    dense_limit: u32,
    /// Approximate bytes resident in live block payloads right now.
    cur_bytes: u64,
    /// High-water mark of `cur_bytes` over the heap's lifetime. Plain
    /// (non-atomic) state updated on the interpreter's single thread,
    /// so accounting is deterministic and costs one add per event.
    peak_bytes: u64,
}

impl<T: Clone> Clone for Heap<T> {
    fn clone(&self) -> Self {
        Heap {
            blocks: self.blocks.clone(),
            errors: self.errors.clone(),
            alloc_limit: self.alloc_limit,
            redzone: self.redzone,
            dense_limit: self.dense_limit,
            cur_bytes: self.cur_bytes,
            peak_bytes: self.peak_bytes,
        }
    }
}

impl<T: Default + Clone> Heap<T> {
    /// Creates an empty heap.
    ///
    /// `alloc_limit` is the allocator's single-request capacity in bytes
    /// (the paper's x86-32 processes realistically refuse ~2 GB requests);
    /// `redzone` is how far past a block an access may land and still be
    /// recorded (rather than faulting).
    #[must_use]
    pub fn new(alloc_limit: u64, redzone: u64) -> Self {
        Heap {
            blocks: Vec::new(),
            errors: Vec::new(),
            alloc_limit,
            redzone,
            dense_limit: 1 << 20,
            cur_bytes: 0,
            peak_bytes: 0,
        }
    }

    /// Charges `bytes` to the resident gauge and ratchets the peak.
    fn account(&mut self, bytes: u64) {
        self.cur_bytes += bytes;
        if self.cur_bytes > self.peak_bytes {
            self.peak_bytes = self.cur_bytes;
        }
    }

    /// Attempts to allocate `size` bytes for `site`. Returns `None` when
    /// the allocator refuses the request.
    pub fn alloc(&mut self, site: Arc<str>, size: u32) -> Option<BlockId> {
        if u64::from(size) >= self.alloc_limit {
            return None;
        }
        let cell_cost = std::mem::size_of::<Cell<T>>() as u64;
        let (payload, accounted) = if size <= self.dense_limit {
            (
                Payload::Dense(Arc::new(vec![Cell::default(); size as usize])),
                BLOCK_OVERHEAD_BYTES + u64::from(size) * cell_cost,
            )
        } else {
            (
                Payload::Sparse(Arc::new(HashMap::new())),
                BLOCK_OVERHEAD_BYTES,
            )
        };
        self.account(accounted);
        self.blocks.push(Block {
            site,
            size,
            freed: false,
            payload,
            accounted,
        });
        Some(BlockId(
            u32::try_from(self.blocks.len()).expect("too many blocks"),
        ))
    }

    /// Frees a block, recording a double-free if needed.
    ///
    /// Returns a fault for `free(null)`-through-wild pointers (null frees
    /// are tolerated, like `free(NULL)` in C).
    pub fn free(&mut self, ptr: BlockId, at: Label) {
        if ptr.is_null() {
            return;
        }
        let block = &mut self.blocks[(ptr.0 - 1) as usize];
        if block.freed {
            self.errors.push(MemError {
                kind: MemErrorKind::DoubleFree,
                site: block.site.clone(),
                offset: 0,
                block_size: block.size,
                at,
            });
        } else {
            block.freed = true;
            // Use-after-free accesses are answered from the `freed` flag
            // before the payload is ever consulted, so the cells are
            // unreachable from here on: drop them eagerly. This keeps
            // long-lived heap clones — prefix snapshots — from pinning
            // (and later re-dropping) megabytes of dead payload.
            block.payload = Payload::Dense(Arc::new(Vec::new()));
            let released = std::mem::take(&mut block.accounted);
            self.cur_bytes = self.cur_bytes.saturating_sub(released);
        }
    }

    /// Loads one byte. Out-of-bounds reads within the red zone are
    /// recorded and return a zero cell; farther reads fault.
    pub fn load(&mut self, ptr: BlockId, offset: u64, at: Label) -> AccessResult<Cell<T>> {
        if ptr.is_null() {
            return Err(Fault::NullDeref { at });
        }
        let block = &mut self.blocks[(ptr.0 - 1) as usize];
        if block.freed {
            self.errors.push(MemError {
                kind: MemErrorKind::UseAfterFreeRead,
                site: block.site.clone(),
                offset,
                block_size: block.size,
                at,
            });
            return Ok(Cell::default());
        }
        if offset >= u64::from(block.size) {
            if offset >= u64::from(block.size) + self.redzone {
                return Err(Fault::WildAccess {
                    at,
                    offset,
                    block_size: block.size,
                });
            }
            self.errors.push(MemError {
                kind: MemErrorKind::InvalidRead,
                site: block.site.clone(),
                offset,
                block_size: block.size,
                at,
            });
            return Ok(Cell::default());
        }
        Ok(match &block.payload {
            Payload::Dense(cells) => cells[offset as usize].clone(),
            Payload::Sparse(cells) => cells.get(&offset).cloned().unwrap_or_default(),
        })
    }

    /// Stores one byte. Out-of-bounds writes within the red zone are
    /// recorded and dropped; farther writes fault.
    pub fn store(
        &mut self,
        ptr: BlockId,
        offset: u64,
        cell: Cell<T>,
        at: Label,
    ) -> AccessResult<()> {
        if ptr.is_null() {
            return Err(Fault::NullDeref { at });
        }
        let block = &mut self.blocks[(ptr.0 - 1) as usize];
        if block.freed {
            self.errors.push(MemError {
                kind: MemErrorKind::UseAfterFreeWrite,
                site: block.site.clone(),
                offset,
                block_size: block.size,
                at,
            });
            return Ok(());
        }
        if offset >= u64::from(block.size) {
            if offset >= u64::from(block.size) + self.redzone {
                return Err(Fault::WildAccess {
                    at,
                    offset,
                    block_size: block.size,
                });
            }
            self.errors.push(MemError {
                kind: MemErrorKind::InvalidWrite,
                site: block.site.clone(),
                offset,
                block_size: block.size,
                at,
            });
            return Ok(());
        }
        match &mut block.payload {
            Payload::Dense(cells) => Arc::make_mut(cells)[offset as usize] = cell,
            Payload::Sparse(cells) => {
                if Arc::make_mut(cells).insert(offset, cell).is_none() {
                    // A never-touched sparse cell materialised.
                    let cost = std::mem::size_of::<Cell<T>>() as u64 + SPARSE_CELL_OVERHEAD_BYTES;
                    block.accounted += cost;
                    self.account(cost);
                }
            }
        }
        Ok(())
    }

    /// All recorded (non-fatal) memory errors, in occurrence order.
    #[must_use]
    pub fn errors(&self) -> &[MemError] {
        &self.errors
    }

    /// Consumes the heap, returning the recorded errors.
    #[must_use]
    pub fn into_errors(self) -> Vec<MemError> {
        self.errors
    }

    /// Number of live (never freed) blocks — useful for leak assertions in
    /// tests.
    #[must_use]
    pub fn live_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| !b.freed).count()
    }

    /// Approximate bytes resident in live block payloads right now.
    /// Logical accounting: payloads shared with snapshot clones via
    /// copy-on-write `Arc`s are charged to every heap that can reach
    /// them.
    #[must_use]
    pub fn current_bytes(&self) -> u64 {
        self.cur_bytes
    }

    /// High-water mark of [`current_bytes`](Self::current_bytes) over
    /// the heap's lifetime (resumed heaps inherit their snapshot's
    /// peak).
    #[must_use]
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap<()> {
        Heap::new(1 << 31, 4096)
    }

    fn cell(v: u8) -> Cell<()> {
        Cell {
            value: Bv::byte(v),
            ovf: false,
            tag: (),
        }
    }

    #[test]
    fn roundtrip_within_bounds() {
        let mut h = heap();
        let b = h.alloc("t@1".into(), 8).unwrap();
        h.store(b, 3, cell(0xaa), Label(0)).unwrap();
        let c = h.load(b, 3, Label(1)).unwrap();
        assert_eq!(c.value, Bv::byte(0xaa));
        assert!(h.errors().is_empty());
    }

    #[test]
    fn oob_write_is_recorded_not_fatal() {
        let mut h = heap();
        let b = h.alloc("t@1".into(), 8).unwrap();
        h.store(b, 8, cell(1), Label(0)).unwrap();
        h.store(b, 100, cell(1), Label(0)).unwrap();
        assert_eq!(h.errors().len(), 2);
        assert!(h
            .errors()
            .iter()
            .all(|e| e.kind == MemErrorKind::InvalidWrite));
    }

    #[test]
    fn wild_write_faults() {
        let mut h = heap();
        let b = h.alloc("t@1".into(), 8).unwrap();
        let fault = h.store(b, 8 + 4096, cell(1), Label(7)).unwrap_err();
        assert!(matches!(fault, Fault::WildAccess { at: Label(7), .. }));
    }

    #[test]
    fn null_deref_faults() {
        let mut h = heap();
        assert!(matches!(
            h.load(BlockId::NULL, 0, Label(2)),
            Err(Fault::NullDeref { at: Label(2) })
        ));
    }

    #[test]
    fn oversized_allocation_fails() {
        let mut h = heap();
        assert!(h.alloc("t@1".into(), u32::MAX).is_none());
        assert!(h.alloc("t@1".into(), 1 << 30).is_some());
    }

    #[test]
    fn huge_allocations_are_sparse_and_cheap() {
        let mut h = heap();
        let b = h.alloc("t@1".into(), (1 << 30) - 1).unwrap();
        h.store(b, (1 << 29) + 17, cell(0x5a), Label(0)).unwrap();
        assert_eq!(
            h.load(b, (1 << 29) + 17, Label(0)).unwrap().value,
            Bv::byte(0x5a)
        );
        // Unwritten sparse cells read as zero.
        assert_eq!(h.load(b, 12345, Label(0)).unwrap().value, Bv::byte(0));
    }

    #[test]
    fn use_after_free_and_double_free() {
        let mut h = heap();
        let b = h.alloc("t@1".into(), 4).unwrap();
        h.free(b, Label(0));
        h.free(b, Label(1));
        h.store(b, 0, cell(1), Label(2)).unwrap();
        let _ = h.load(b, 0, Label(3)).unwrap();
        let kinds: Vec<_> = h.errors().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                MemErrorKind::DoubleFree,
                MemErrorKind::UseAfterFreeWrite,
                MemErrorKind::UseAfterFreeRead
            ]
        );
        assert_eq!(h.live_blocks(), 0);
    }

    #[test]
    fn free_null_is_tolerated() {
        let mut h = heap();
        h.free(BlockId::NULL, Label(0));
        assert!(h.errors().is_empty());
    }

    #[test]
    fn byte_accounting_tracks_alloc_store_free() {
        let cell = std::mem::size_of::<Cell<()>>() as u64;
        let mut h = heap();
        assert_eq!((h.current_bytes(), h.peak_bytes()), (0, 0));

        // Dense block: charged up front.
        let dense = h.alloc("t@1".into(), 8).unwrap();
        let dense_cost = BLOCK_OVERHEAD_BYTES + 8 * cell;
        assert_eq!(h.current_bytes(), dense_cost);

        // Sparse block: only overhead until cells are touched.
        let sparse = h.alloc("t@2".into(), (1 << 30) - 1).unwrap();
        assert_eq!(h.current_bytes(), dense_cost + BLOCK_OVERHEAD_BYTES);
        h.store(sparse, 17, cell_of(1), Label(0)).unwrap();
        h.store(sparse, 17, cell_of(2), Label(0)).unwrap(); // rewrite: no growth
        h.store(sparse, 99, cell_of(3), Label(0)).unwrap();
        let sparse_cost = BLOCK_OVERHEAD_BYTES + 2 * (cell + SPARSE_CELL_OVERHEAD_BYTES);
        assert_eq!(h.current_bytes(), dense_cost + sparse_cost);
        let peak = h.peak_bytes();
        assert_eq!(peak, h.current_bytes());

        // Free releases a block's charge; the peak stays.
        h.free(dense, Label(0));
        assert_eq!(h.current_bytes(), sparse_cost);
        assert_eq!(h.peak_bytes(), peak);
        h.free(dense, Label(0)); // double free: no double release
        assert_eq!(h.current_bytes(), sparse_cost);

        // Clones carry the gauges.
        let clone = h.clone();
        assert_eq!(clone.current_bytes(), sparse_cost);
        assert_eq!(clone.peak_bytes(), peak);
    }

    fn cell_of(v: u8) -> Cell<()> {
        cell(v)
    }

    #[test]
    fn thread_local_peak_gauge_reads_and_resets() {
        // Run on a dedicated thread so parallel tests can't interleave
        // their own note_peak calls into this gauge.
        std::thread::spawn(|| {
            assert_eq!(take_peak_heap_bytes(), 0);
            note_peak_heap_bytes(100);
            note_peak_heap_bytes(40); // smaller: ignored
            assert_eq!(take_peak_heap_bytes(), 100);
            assert_eq!(take_peak_heap_bytes(), 0);
        })
        .join()
        .unwrap();
    }
}
