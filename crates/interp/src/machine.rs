//! The interpreter: concrete + shadow execution of core-language programs.
//!
//! Implements the operational semantics of the paper's Figures 4–6. A
//! program state is ⟨ℓ, ρ, m, φ⟩: the current statement, an environment
//! mapping variables to (value, shadow) pairs, a memory mapping
//! (base, offset) to (value, shadow) pairs, and the recorded branch
//! condition sequence φ. The interpreter executes the whole transition
//! relation, producing a [`Run`] that contains everything DIODE's pipeline
//! consumes: the allocation records (target sites with their size values
//! and symbolic target expressions), the branch observation sequence φ,
//! memcheck-style memory errors, and the final outcome.

use std::collections::HashMap;

use diode_lang::{Aexp, Bexp, Block, Bv, CastKind, Label, ProcId, Program, Stmt, Symbol, UnOp};
use diode_obs::Phase;
use diode_symbolic::eval_bin;

use crate::heap::{Cell, Fault, Heap, MemError};
use crate::shadow::Shadow;
use crate::snapshot::{crc_check, ContImage, FrameImage, ReadLog, Snapshot};
use crate::value::{BlockId, Raw, Value};

/// Interpreter limits and switches.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Maximum number of executed statements (including loop-condition
    /// evaluations). Overflow-triggering inputs routinely send programs
    /// into giant loops; fuel bounds every run.
    pub fuel: u64,
    /// Record the branch observation sequence φ. Disable for plain
    /// did-it-crash candidate runs to save memory.
    pub record_branches: bool,
    /// Allocator single-request limit in bytes (requests ≥ limit fail).
    pub alloc_limit: u64,
    /// Red zone: out-of-bounds accesses within this many bytes past a
    /// block are recorded; farther accesses segfault.
    pub redzone: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            fuel: 5_000_000,
            record_branches: true,
            alloc_limit: 1 << 31,
            redzone: 4096,
            max_call_depth: 128,
        }
    }
}

/// One observed conditional branch (an element ⟨ℓ, B⟩ of φ, §3.2).
#[derive(Debug, Clone)]
pub struct BranchObs<C> {
    /// Label of the `if`/`while` statement.
    pub label: Label,
    /// Direction taken (condition outcome).
    pub taken: bool,
    /// Shadow condition tag, already *oriented*: it asserts "the condition
    /// evaluates exactly as observed" (for the symbolic policy this is the
    /// branch constraint of §1.1).
    pub constraint: C,
}

/// One dynamic execution of an allocation site.
#[derive(Debug, Clone)]
pub struct AllocRecord<T> {
    /// Label of the `alloc` statement (the target label ℓ).
    pub label: Label,
    /// Site name (`file@line`).
    pub site: std::sync::Arc<str>,
    /// Concrete size argument (the target value).
    pub size: Bv,
    /// True if the computation of the size overflowed (sticky flag): the
    /// ground truth for "the input triggers an overflow at ℓ".
    pub size_ovf: bool,
    /// Shadow tag of the size: taint labels (stage 1, the relevant input
    /// bytes) or the symbolic target expression (stage 2).
    pub size_tag: T,
    /// True if the allocator refused the request.
    pub failed: bool,
    /// Number of branch observations recorded before this allocation
    /// executed — φ restricted to the path *to* this site.
    pub branches_before: usize,
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// `main` finished normally.
    Completed,
    /// The program rejected its input via `error(msg)` (e.g. `png_error`).
    InputRejected(String),
    /// The program aborted (`abort(msg)` or failed `alloc_abort`) — the
    /// paper's SIGABRT rows.
    Aborted(String),
    /// A memory fault (null dereference / wild access) — SIGSEGV.
    Segfault(Fault),
    /// The fuel limit was exhausted.
    OutOfFuel,
    /// The program itself is ill-formed (width mismatch, unbound variable,
    /// type confusion). Benchmark programs must never reach this.
    RuntimeError(String),
}

impl Outcome {
    /// True for SIGSEGV.
    #[must_use]
    pub fn is_segfault(&self) -> bool {
        matches!(self, Outcome::Segfault(_))
    }
}

/// Everything observed during one execution.
#[derive(Debug)]
pub struct Run<T, C> {
    /// Final outcome.
    pub outcome: Outcome,
    /// Memcheck-style errors, in occurrence order.
    pub mem_errors: Vec<MemError>,
    /// Dynamic allocation records, in occurrence order.
    pub allocs: Vec<AllocRecord<T>>,
    /// The branch observation sequence φ (empty if recording disabled).
    pub branches: Vec<BranchObs<C>>,
    /// Messages from `warn(..)` statements.
    pub warnings: Vec<String>,
    /// Statements executed.
    pub steps: u64,
}

impl<T, C> Run<T, C> {
    /// Allocation records for a specific site label.
    pub fn allocs_at(&self, label: Label) -> impl Iterator<Item = &AllocRecord<T>> {
        self.allocs.iter().filter(move |a| a.label == label)
    }

    /// True if the run triggered an overflow at the given site: the site
    /// executed with an overflowed size computation (§4.6's verification).
    #[must_use]
    pub fn overflowed_at(&self, label: Label) -> bool {
        self.allocs_at(label).any(|a| a.size_ovf)
    }
}

/// Executes `program` on `input` under the given shadow policy.
///
/// This is the single entry point used by all of DIODE's stages; the choice
/// of `shadow` selects taint tracing, symbolic recording, or plain
/// execution.
pub fn run<S: Shadow>(
    program: &Program,
    input: &[u8],
    shadow: S,
    config: &MachineConfig,
) -> Run<S::Tag, S::CondTag> {
    let _span = diode_obs::span(Phase::InterpRun);
    let mut m = Machine::boot(program, input, shadow, config);
    let outcome = m.drive_to_end();
    m.finish(outcome)
}

/// Like [`run`], additionally recording, for every input offset the
/// program reads directly, the step count of the statement performing
/// the **first** such read. One traced run therefore answers "where
/// would executions diverge?" for *every* candidate byte set at once —
/// the per-unit warm-up uses this to place one prefix snapshot per site
/// from a single pass.
///
/// Reads made by the `crc32_ok` intrinsic are not traced: snapshot
/// validation checks checksum outcomes semantically, so a checksum over
/// divergent bytes does not force a snapshot earlier.
pub fn run_traced<S: Shadow>(
    program: &Program,
    input: &[u8],
    shadow: S,
    config: &MachineConfig,
) -> (Run<S::Tag, S::CondTag>, HashMap<u64, u64>) {
    let _span = diode_obs::span(Phase::InterpRun);
    let mut m = Machine::boot(program, input, shadow, config);
    m.trace_reads = Some(HashMap::new());
    let outcome = m.drive_to_end();
    let trace = m.trace_reads.take().unwrap_or_default();
    (m.finish(outcome), trace)
}

/// Like [`run`], additionally watching for the first read of a byte in
/// `divergent` (a **sorted** list of input offsets). Returns the run plus
/// the step count of the statement that performed the first such read —
/// the natural prefix-snapshot point for candidate inputs that differ
/// from this one only at divergent offsets. `None` when the run never
/// read a divergent byte.
pub fn run_probed<S: Shadow>(
    program: &Program,
    input: &[u8],
    shadow: S,
    config: &MachineConfig,
    divergent: &[u32],
) -> (Run<S::Tag, S::CondTag>, Option<u64>) {
    debug_assert!(divergent.windows(2).all(|w| w[0] < w[1]));
    let (run, trace) = run_traced(program, input, shadow, config);
    let probe = divergent
        .iter()
        .filter_map(|&o| trace.get(&u64::from(o)).copied())
        .min();
    (run, probe)
}

/// Like [`run`], additionally capturing a [`Snapshot`] of the machine
/// state just before the statement whose tick would reach
/// `stop_before_step` (as reported by [`run_probed`]), then continuing to
/// completion. The snapshot is `None` when the run halts before reaching
/// that step.
#[allow(clippy::type_complexity)]
pub fn run_and_capture<S: Shadow + Clone>(
    program: &Program,
    input: &[u8],
    shadow: S,
    config: &MachineConfig,
    stop_before_step: u64,
) -> (Run<S::Tag, S::CondTag>, Option<Snapshot<S>>) {
    let _span = diode_obs::span(Phase::InterpCapture);
    let mut m = Machine::boot(program, input, shadow, config);
    m.log = Some(ReadLog::default());
    m.capture_before = Some(stop_before_step);
    match m.drive() {
        DriveEnd::Outcome(outcome) => (m.finish(outcome), None),
        DriveEnd::Captured => {
            let snapshot = m.capture(false);
            m.capture_before = None;
            let outcome = m.drive_to_end();
            (m.finish(outcome), Some(snapshot))
        }
    }
}

/// Captures prefix snapshots at **several** step boundaries in a single
/// pass — the per-unit warm-up that hands every site of a multi-site
/// program its own resumption point for the price of one partial run.
/// `stops` must be sorted ascending (duplicates allowed: each gets its
/// own capture of the same state); execution ends right after the last
/// capture, so the run costs only the longest requested prefix. Entries
/// are `None` from the first stop the run halted before reaching.
pub fn run_capture_multi<S: Shadow + Clone>(
    program: &Program,
    input: &[u8],
    shadow: S,
    config: &MachineConfig,
    stops: &[u64],
) -> Vec<Option<Snapshot<S>>> {
    debug_assert!(stops.windows(2).all(|w| w[0] <= w[1]));
    let _span = diode_obs::span(Phase::InterpCapture);
    let mut m = Machine::boot(program, input, shadow, config);
    m.log = Some(ReadLog::default());
    let mut out: Vec<Option<Snapshot<S>>> = Vec::with_capacity(stops.len());
    for (i, &stop) in stops.iter().enumerate() {
        m.capture_before = Some(stop);
        match m.drive() {
            DriveEnd::Captured => out.push(Some(m.capture(i + 1 < stops.len()))),
            DriveEnd::Outcome(_) => break,
        }
    }
    out.resize_with(stops.len(), || None);
    out
}

/// Resumes a captured [`Snapshot`] on `input`, running the divergent
/// suffix to completion. Returns `None` — without executing anything —
/// unless the snapshot [`validates`](Snapshot::validates) for `input`;
/// when it does, the result is byte-identical to `run(program, input,
/// ...)` under the same shadow policy and configuration.
///
/// # Panics
///
/// Panics if `program` is not the program the snapshot was captured from
/// (the control stack no longer matches its structure).
pub fn run_from<S: Shadow + Clone>(
    program: &Program,
    input: &[u8],
    snapshot: &Snapshot<S>,
    config: &MachineConfig,
) -> Option<Run<S::Tag, S::CondTag>> {
    run_from_with(program, input, snapshot, snapshot.shadow.clone(), config)
}

/// [`run_from`] with a **shadow override**: the suffix executes under
/// `shadow` instead of the policy the snapshot was captured with.
///
/// The caller asserts that the two policies are indistinguishable over
/// the captured prefix — i.e. they would have produced identical tags
/// for every prefix value. The canonical use: a prefix captured under
/// `Symbolic::relevant_bytes([])` (all tags `None`) resumed per site
/// under `Symbolic::relevant_bytes(site_bytes)`, valid because the
/// prefix ends *before* the first read of any site byte, so the
/// site-specific policy would also have tagged nothing.
pub fn run_from_with<S: Shadow + Clone>(
    program: &Program,
    input: &[u8],
    snapshot: &Snapshot<S>,
    shadow: S,
    config: &MachineConfig,
) -> Option<Run<S::Tag, S::CondTag>> {
    let _span = diode_obs::span(Phase::InterpResume);
    if !snapshot.validates(input) {
        return None;
    }
    let mut m = Machine {
        program,
        input,
        shadow,
        config,
        heap: snapshot.heap.clone(),
        frames: rebuild_frames(program, &snapshot.frames),
        branches: snapshot.branches.clone(),
        allocs: snapshot.allocs.clone(),
        warnings: snapshot.warnings.clone(),
        steps: snapshot.steps,
        trace_reads: None,
        log: None,
        capture_before: None,
    };
    let outcome = m.drive_to_end();
    Some(m.finish(outcome))
}

enum Halt {
    Rejected(String),
    Aborted(String),
    Fault(Fault),
    Fuel,
    Runtime(String),
}

impl Halt {
    fn into_outcome(self) -> Outcome {
        match self {
            Halt::Rejected(m) => Outcome::InputRejected(m),
            Halt::Aborted(m) => Outcome::Aborted(m),
            Halt::Fault(f) => Outcome::Segfault(f),
            Halt::Fuel => Outcome::OutOfFuel,
            Halt::Runtime(m) => Outcome::RuntimeError(m),
        }
    }
}

/// How a nested block was entered — mirrored by
/// [`ContImage`](crate::snapshot) when a control stack is frozen.
#[derive(Debug, Clone, Copy)]
enum Via {
    Root,
    Then,
    Else,
    LoopBody,
}

/// One control-stack entry: a block being executed, or a `while` head
/// about to re-evaluate its condition.
enum Cont<'a> {
    Block {
        block: &'a Block,
        idx: usize,
        via: Via,
    },
    Loop {
        stmt: &'a Stmt,
    },
}

/// One call frame: the executing procedure, the caller's destination for
/// the return value, the local environment, and the control stack.
struct Frame<'a, T> {
    proc: ProcId,
    ret_dst: Option<Symbol>,
    env: HashMap<Symbol, Value<T>>,
    control: Vec<Cont<'a>>,
}

/// The next machine transition, decided without mutating anything so the
/// capture check can fire *before* the state advances.
enum Action<'a> {
    /// The frame's control stack is empty: implicit `return`.
    FramePop,
    /// The top block is exhausted: pop it.
    BlockPop,
    /// Execute this statement (the top block's next one).
    Stmt(&'a Stmt),
    /// Re-evaluate the top `while` head's condition.
    LoopCond(&'a Stmt),
}

/// Why the drive loop stopped.
enum DriveEnd {
    Outcome(Outcome),
    Captured,
}

/// Rebuilds a borrowed control stack from its program-independent image.
///
/// # Panics
///
/// Panics when the image does not fit the program's structure (i.e. the
/// snapshot was captured from a different program).
fn rebuild_frames<'a, T: Clone>(
    program: &'a Program,
    images: &[FrameImage<T>],
) -> Vec<Frame<'a, T>> {
    images
        .iter()
        .map(|img| {
            let proc = program.proc(img.proc);
            let mut control: Vec<Cont<'a>> = Vec::with_capacity(img.control.len());
            for entry in &img.control {
                let next = match (entry, control.last()) {
                    (ContImage::Root { idx }, None) => Cont::Block {
                        block: &proc.body,
                        idx: *idx,
                        via: Via::Root,
                    },
                    (
                        ContImage::Then { idx },
                        Some(Cont::Block {
                            block, idx: pidx, ..
                        }),
                    ) => match &block.stmts()[pidx - 1] {
                        Stmt::If { then_blk, .. } => Cont::Block {
                            block: then_blk,
                            idx: *idx,
                            via: Via::Then,
                        },
                        other => panic!("snapshot/program mismatch: expected if, found {other:?}"),
                    },
                    (
                        ContImage::Else { idx },
                        Some(Cont::Block {
                            block, idx: pidx, ..
                        }),
                    ) => match &block.stmts()[pidx - 1] {
                        Stmt::If { else_blk, .. } => Cont::Block {
                            block: else_blk,
                            idx: *idx,
                            via: Via::Else,
                        },
                        other => panic!("snapshot/program mismatch: expected if, found {other:?}"),
                    },
                    (
                        ContImage::Loop,
                        Some(Cont::Block {
                            block, idx: pidx, ..
                        }),
                    ) => match &block.stmts()[pidx - 1] {
                        stmt @ Stmt::While { .. } => Cont::Loop { stmt },
                        other => {
                            panic!("snapshot/program mismatch: expected while, found {other:?}")
                        }
                    },
                    (ContImage::LoopBody { idx }, Some(Cont::Loop { stmt })) => match stmt {
                        Stmt::While { body, .. } => Cont::Block {
                            block: body,
                            idx: *idx,
                            via: Via::LoopBody,
                        },
                        other => {
                            panic!("snapshot/program mismatch: expected while, found {other:?}")
                        }
                    },
                    (entry, _) => {
                        panic!("snapshot/program mismatch: {entry:?} has no matching parent")
                    }
                };
                control.push(next);
            }
            Frame {
                proc: img.proc,
                ret_dst: img.ret_dst,
                env: img.env.clone(),
                control,
            }
        })
        .collect()
}

struct Machine<'a, S: Shadow> {
    program: &'a Program,
    input: &'a [u8],
    shadow: S,
    config: &'a MachineConfig,
    heap: Heap<S::Tag>,
    frames: Vec<Frame<'a, S::Tag>>,
    branches: Vec<BranchObs<S::CondTag>>,
    allocs: Vec<AllocRecord<S::Tag>>,
    warnings: Vec<String>,
    steps: u64,
    /// Trace mode: input offset → step of its first direct read.
    trace_reads: Option<HashMap<u64, u64>>,
    /// Capture mode: prefix input observations being logged.
    log: Option<ReadLog>,
    /// Capture mode: stop just before the tick reaching this step.
    capture_before: Option<u64>,
}

impl<'a, S: Shadow> Machine<'a, S> {
    /// A fresh machine at `main`'s entry. A program whose `main` takes
    /// parameters gets an empty frame stack plus a pending boot error,
    /// reported by the first `drive`.
    fn boot(
        program: &'a Program,
        input: &'a [u8],
        shadow: S,
        config: &'a MachineConfig,
    ) -> Machine<'a, S> {
        let entry = program.proc(program.entry());
        let frames = if entry.params.is_empty() {
            vec![Frame {
                proc: program.entry(),
                ret_dst: None,
                env: HashMap::new(),
                control: vec![Cont::Block {
                    block: &entry.body,
                    idx: 0,
                    via: Via::Root,
                }],
            }]
        } else {
            Vec::new()
        };
        Machine {
            program,
            input,
            shadow,
            config,
            heap: Heap::new(config.alloc_limit, config.redzone),
            frames,
            branches: Vec::new(),
            allocs: Vec::new(),
            warnings: Vec::new(),
            steps: 0,
            trace_reads: None,
            log: None,
            capture_before: None,
        }
    }

    /// True when `main` took parameters at boot (empty frame stack with
    /// zero executed steps means we never started).
    fn boot_failed(&self) -> bool {
        self.frames.is_empty() && self.steps == 0
    }

    /// The main interpreter loop: repeatedly decide the next transition,
    /// fire the capture check ahead of any state change, and execute.
    fn drive(&mut self) -> DriveEnd {
        if self.boot_failed() {
            return DriveEnd::Outcome(Outcome::RuntimeError(
                "main must not take parameters".into(),
            ));
        }
        loop {
            let action: Action<'a> = {
                let Some(frame) = self.frames.last() else {
                    return DriveEnd::Outcome(Outcome::Completed);
                };
                match frame.control.last() {
                    None => Action::FramePop,
                    Some(Cont::Block { block, idx, .. }) => {
                        let block: &'a Block = block;
                        match block.stmts().get(*idx) {
                            Some(stmt) => Action::Stmt(stmt),
                            None => Action::BlockPop,
                        }
                    }
                    Some(Cont::Loop { stmt }) => Action::LoopCond(stmt),
                }
            };
            let result = match action {
                Action::FramePop => self.pop_frame(None),
                Action::BlockPop => {
                    self.top_frame().control.pop();
                    Ok(())
                }
                Action::Stmt(stmt) => {
                    // Both statement execution and loop-condition
                    // evaluation tick; capture fires right before the tick
                    // that would reach the requested step, i.e. at the
                    // exact statement boundary the probe identified.
                    if self.capture_due() {
                        return DriveEnd::Captured;
                    }
                    self.advance_idx();
                    self.step_stmt(stmt)
                }
                Action::LoopCond(stmt) => {
                    if self.capture_due() {
                        return DriveEnd::Captured;
                    }
                    self.loop_step(stmt)
                }
            };
            if let Err(halt) = result {
                return DriveEnd::Outcome(halt.into_outcome());
            }
        }
    }

    /// Drives to completion in a mode where capture cannot fire.
    fn drive_to_end(&mut self) -> Outcome {
        match self.drive() {
            DriveEnd::Outcome(o) => o,
            DriveEnd::Captured => unreachable!("capture disabled in this mode"),
        }
    }

    /// Consumes the machine's observations into a [`Run`].
    fn finish(self, outcome: Outcome) -> Run<S::Tag, S::CondTag> {
        crate::heap::note_peak_heap_bytes(self.heap.peak_bytes());
        Run {
            outcome,
            mem_errors: self.heap.into_errors(),
            allocs: self.allocs,
            branches: self.branches,
            warnings: self.warnings,
            steps: self.steps,
        }
    }

    fn capture_due(&self) -> bool {
        self.capture_before == Some(self.steps + 1)
    }

    /// Freezes the current state (capture mode only): the read log so far
    /// becomes the snapshot's validation log, and logging stops.
    fn capture(&mut self, keep_logging: bool) -> Snapshot<S>
    where
        S: Clone,
    {
        let log = if keep_logging {
            self.log.clone().unwrap_or_default()
        } else {
            self.log.take().unwrap_or_default()
        };
        let mut reads: Vec<(u64, u8)> = log.reads.into_iter().collect();
        reads.sort_unstable();
        Snapshot {
            shadow: self.shadow.clone(),
            steps: self.steps,
            heap: self.heap.clone(),
            frames: self.frames.iter().map(Machine::<S>::frame_image).collect(),
            branches: self.branches.clone(),
            allocs: self.allocs.clone(),
            warnings: self.warnings.clone(),
            reads,
            crcs: log.crcs,
            inlen: log.inlen,
        }
    }

    fn frame_image(frame: &Frame<'a, S::Tag>) -> FrameImage<S::Tag> {
        FrameImage {
            proc: frame.proc,
            ret_dst: frame.ret_dst,
            env: frame.env.clone(),
            control: frame
                .control
                .iter()
                .map(|c| match c {
                    Cont::Block { idx, via, .. } => match via {
                        Via::Root => ContImage::Root { idx: *idx },
                        Via::Then => ContImage::Then { idx: *idx },
                        Via::Else => ContImage::Else { idx: *idx },
                        Via::LoopBody => ContImage::LoopBody { idx: *idx },
                    },
                    Cont::Loop { .. } => ContImage::Loop,
                })
                .collect(),
        }
    }

    fn top_frame(&mut self) -> &mut Frame<'a, S::Tag> {
        self.frames.last_mut().expect("frame stack never empty")
    }

    fn env(&mut self) -> &mut HashMap<Symbol, Value<S::Tag>> {
        &mut self.top_frame().env
    }

    fn advance_idx(&mut self) {
        match self.top_frame().control.last_mut() {
            Some(Cont::Block { idx, .. }) => *idx += 1,
            _ => unreachable!("advance_idx only follows Action::Stmt"),
        }
    }

    /// Pops the current frame, delivering `value` to the caller's
    /// destination (exactly the old recursive `Flow::Return` semantics:
    /// a discarded value is fine, a missing expected value is a runtime
    /// error).
    fn pop_frame(&mut self, value: Option<Value<S::Tag>>) -> Result<(), Halt> {
        let frame = self.frames.pop().expect("frame stack never empty");
        match (frame.ret_dst, value) {
            (Some(dst), Some(v)) => {
                self.env().insert(dst, v);
                Ok(())
            }
            (Some(_), None) => Err(Halt::Runtime(format!(
                "procedure `{}` returned no value",
                self.program.proc(frame.proc).name
            ))),
            (None, _) => Ok(()),
        }
    }

    fn tick(&mut self) -> Result<(), Halt> {
        self.steps += 1;
        if self.steps > self.config.fuel {
            Err(Halt::Fuel)
        } else {
            Ok(())
        }
    }

    fn var_name(&self, sym: Symbol) -> &str {
        self.program.interner().name(sym)
    }

    /// Executes one statement. Control statements (`if`, `while`, calls,
    /// returns) only manipulate the explicit control/frame stacks; the
    /// drive loop picks up from there on the next iteration.
    fn step_stmt(&mut self, stmt: &'a Stmt) -> Result<(), Halt> {
        self.tick()?;
        match stmt {
            Stmt::Skip(_) => Ok(()),
            Stmt::Assign(_, dst, e) => {
                let v = self.eval(e)?;
                self.env().insert(*dst, v);
                Ok(())
            }
            Stmt::Call {
                dst, proc, args, ..
            } => {
                if self.frames.len() >= self.config.max_call_depth {
                    return Err(Halt::Runtime("call depth limit exceeded".into()));
                }
                let callee = self.program.proc(*proc);
                if callee.params.len() != args.len() {
                    return Err(Halt::Runtime(format!(
                        "procedure `{}` expects {} arguments, got {}",
                        callee.name,
                        callee.params.len(),
                        args.len()
                    )));
                }
                let mut env = HashMap::new();
                for (param, arg) in callee.params.iter().zip(args) {
                    let v = self.eval(arg)?;
                    env.insert(*param, v);
                }
                self.frames.push(Frame {
                    proc: *proc,
                    ret_dst: *dst,
                    env,
                    control: vec![Cont::Block {
                        block: &callee.body,
                        idx: 0,
                        via: Via::Root,
                    }],
                });
                Ok(())
            }
            Stmt::Alloc {
                label,
                site,
                dst,
                size,
                abort_on_fail,
            } => {
                let sv = self.eval(size)?;
                let Some(bv) = sv.as_int() else {
                    return Err(Halt::Runtime("allocation size must be an integer".into()));
                };
                if bv.width() != 32 {
                    return Err(Halt::Runtime(format!(
                        "allocation size must be 32 bits wide, got {} bits at {site}",
                        bv.width()
                    )));
                }
                let size32 = bv.value() as u32;
                let block = self.heap.alloc(site.clone(), size32);
                self.allocs.push(AllocRecord {
                    label: *label,
                    site: site.clone(),
                    size: bv,
                    size_ovf: sv.ovf,
                    size_tag: sv.tag.clone(),
                    failed: block.is_none(),
                    branches_before: self.branches.len(),
                });
                match block {
                    Some(b) => {
                        self.env().insert(*dst, Value::ptr(b));
                        Ok(())
                    }
                    None if *abort_on_fail => Err(Halt::Aborted(format!(
                        "allocation of {size32} bytes failed at {site}"
                    ))),
                    None => {
                        self.env().insert(*dst, Value::ptr(BlockId::NULL));
                        Ok(())
                    }
                }
            }
            Stmt::Free(label, ptr) => {
                let v = self.lookup(*ptr)?;
                let Some(b) = v.as_ptr() else {
                    return Err(Halt::Runtime(format!(
                        "free of non-pointer `{}`",
                        self.var_name(*ptr)
                    )));
                };
                self.heap.free(b, *label);
                Ok(())
            }
            Stmt::Load {
                label,
                dst,
                base,
                offset,
            } => {
                let ptr = self.lookup(*base)?;
                let Some(b) = ptr.as_ptr() else {
                    return Err(Halt::Runtime(format!(
                        "load through non-pointer `{}`",
                        self.var_name(*base)
                    )));
                };
                let off = self.eval(offset)?;
                let Some(off) = off.as_int() else {
                    return Err(Halt::Runtime("load offset must be an integer".into()));
                };
                let cell = self
                    .heap
                    .load(b, off.value() as u64, *label)
                    .map_err(Halt::Fault)?;
                self.env().insert(
                    *dst,
                    Value {
                        raw: Raw::Int(cell.value),
                        ovf: cell.ovf,
                        tag: cell.tag,
                    },
                );
                Ok(())
            }
            Stmt::Store {
                label,
                base,
                offset,
                value,
            } => {
                let ptr = self.lookup(*base)?;
                let Some(b) = ptr.as_ptr() else {
                    return Err(Halt::Runtime(format!(
                        "store through non-pointer `{}`",
                        self.var_name(*base)
                    )));
                };
                let off = self.eval(offset)?;
                let Some(off) = off.as_int() else {
                    return Err(Halt::Runtime("store offset must be an integer".into()));
                };
                let v = self.eval(value)?;
                let Some(bv) = v.as_int() else {
                    return Err(Halt::Runtime("stored value must be an integer".into()));
                };
                if bv.width() != 8 {
                    return Err(Halt::Runtime(format!(
                        "memory cells are bytes; stored value is {} bits wide",
                        bv.width()
                    )));
                }
                self.heap
                    .store(
                        b,
                        off.value() as u64,
                        Cell {
                            value: bv,
                            ovf: v.ovf,
                            tag: v.tag,
                        },
                        *label,
                    )
                    .map_err(Halt::Fault)?;
                Ok(())
            }
            Stmt::If {
                label,
                cond,
                then_blk,
                else_blk,
            } => {
                let (taken, constraint) = self.eval_cond(cond)?;
                if self.config.record_branches {
                    self.branches.push(BranchObs {
                        label: *label,
                        taken,
                        constraint,
                    });
                }
                let (block, via) = if taken {
                    (then_blk, Via::Then)
                } else {
                    (else_blk, Via::Else)
                };
                self.top_frame()
                    .control
                    .push(Cont::Block { block, idx: 0, via });
                Ok(())
            }
            Stmt::While { .. } => {
                // The statement's own tick already happened; the loop head
                // goes on the control stack and each condition evaluation
                // ticks again in `loop_step`, exactly as the recursive
                // interpreter did.
                self.top_frame().control.push(Cont::Loop { stmt });
                Ok(())
            }
            Stmt::Error(_, msg) => Err(Halt::Rejected(msg.clone())),
            Stmt::Warn(_, msg) => {
                self.warnings.push(msg.clone());
                Ok(())
            }
            Stmt::Abort(_, msg) => Err(Halt::Aborted(msg.clone())),
            Stmt::Return(_, None) => self.pop_frame(None),
            Stmt::Return(_, Some(e)) => {
                let v = self.eval(e)?;
                self.pop_frame(Some(v))
            }
        }
    }

    /// One `while`-head evaluation: tick, evaluate the condition, record
    /// the branch observation, then either enter the body or pop the loop.
    fn loop_step(&mut self, stmt: &'a Stmt) -> Result<(), Halt> {
        let Stmt::While { label, cond, body } = stmt else {
            unreachable!("Cont::Loop always holds a while statement");
        };
        self.tick()?;
        let (taken, constraint) = self.eval_cond(cond)?;
        if self.config.record_branches {
            self.branches.push(BranchObs {
                label: *label,
                taken,
                constraint,
            });
        }
        if taken {
            self.top_frame().control.push(Cont::Block {
                block: body,
                idx: 0,
                via: Via::LoopBody,
            });
        } else {
            self.top_frame().control.pop();
        }
        Ok(())
    }

    fn lookup(&mut self, sym: Symbol) -> Result<Value<S::Tag>, Halt> {
        match self.frames.last().expect("frame").env.get(&sym) {
            Some(v) => Ok(v.clone()),
            None => Err(Halt::Runtime(format!(
                "use of unbound variable `{}`",
                self.var_name(sym)
            ))),
        }
    }

    fn eval(&mut self, e: &Aexp) -> Result<Value<S::Tag>, Halt> {
        match e {
            Aexp::Const(bv) => Ok(Value::int(*bv)),
            Aexp::Var(sym) => self.lookup(*sym),
            Aexp::InLen => {
                if let Some(log) = &mut self.log {
                    log.inlen = Some(self.input.len() as u64);
                }
                Ok(Value::int(Bv::u32(
                    u32::try_from(self.input.len()).unwrap_or(u32::MAX),
                )))
            }
            Aexp::InByte(idx) => {
                let iv = self.eval(idx)?;
                let Some(off) = iv.as_int() else {
                    return Err(Halt::Runtime("input index must be an integer".into()));
                };
                let off64 = off.value() as u64;
                self.observe_read(off64);
                // Reads past the end of the input behave like reads past
                // EOF: they produce zero, untainted bytes.
                if off64 >= self.input.len() as u64 {
                    return Ok(Value::int(Bv::byte(0)));
                }
                let offset = off64 as u32;
                let byte = self.input[offset as usize];
                let tag = self.shadow.input_byte(offset);
                Ok(Value {
                    raw: Raw::Int(Bv::byte(byte)),
                    ovf: false,
                    tag,
                })
            }
            Aexp::Un(op, a) => {
                let av = self.eval(a)?;
                let Some(abv) = av.as_int() else {
                    return Err(Halt::Runtime("unary operand must be an integer".into()));
                };
                let (result, ovf) = match op {
                    UnOp::Neg => abv.neg(),
                    UnOp::Not => (abv.not(), false),
                };
                let tag = self.shadow.un(*op, (&av.tag, abv));
                Ok(Value {
                    raw: Raw::Int(result),
                    ovf: av.ovf | ovf,
                    tag,
                })
            }
            Aexp::Bin(op, a, b) => {
                let av = self.eval(a)?;
                let bv = self.eval(b)?;
                let (Some(abv), Some(bbv)) = (av.as_int(), bv.as_int()) else {
                    return Err(Halt::Runtime(format!(
                        "binary operands of {op:?} must be integers"
                    )));
                };
                if abv.width() != bbv.width() {
                    return Err(Halt::Runtime(format!(
                        "width mismatch in {op:?}: {} vs {} bits",
                        abv.width(),
                        bbv.width()
                    )));
                }
                let (result, ovf) = eval_bin(*op, abv, bbv);
                let tag = self.shadow.bin(*op, (&av.tag, abv), (&bv.tag, bbv));
                Ok(Value {
                    raw: Raw::Int(result),
                    ovf: av.ovf | bv.ovf | ovf,
                    tag,
                })
            }
            Aexp::Cast(kind, width, a) => {
                let av = self.eval(a)?;
                let Some(abv) = av.as_int() else {
                    return Err(Halt::Runtime("cast operand must be an integer".into()));
                };
                let (result, ovf) = match kind {
                    CastKind::Zext if *width > abv.width() => (abv.zext(*width), false),
                    CastKind::Sext if *width > abv.width() => (abv.sext(*width), false),
                    CastKind::Trunc if *width < abv.width() => abv.trunc(*width),
                    _ => {
                        return Err(Halt::Runtime(format!(
                            "invalid cast {kind:?} from {} to {} bits",
                            abv.width(),
                            width
                        )))
                    }
                };
                let tag = self.shadow.cast(*kind, *width, (&av.tag, abv));
                Ok(Value {
                    raw: Raw::Int(result),
                    ovf: av.ovf | ovf,
                    tag,
                })
            }
        }
    }

    /// Evaluates a boolean condition with short-circuit semantics,
    /// returning the outcome and the accumulated, oriented condition tag
    /// (the conjunction of every evaluated atom forced to its observed
    /// truth value — i.e. "the condition evaluates the same way").
    fn eval_cond(&mut self, b: &Bexp) -> Result<(bool, S::CondTag), Halt> {
        match b {
            Bexp::Const(v) => {
                let t = self.shadow.cond_true();
                Ok((*v, t))
            }
            Bexp::Cmp(op, lhs, rhs) => {
                let av = self.eval(lhs)?;
                let bv = self.eval(rhs)?;
                match (&av.raw, &bv.raw) {
                    (Raw::Int(a), Raw::Int(b)) => {
                        if a.width() != b.width() {
                            return Err(Halt::Runtime(format!(
                                "comparison width mismatch: {} vs {} bits",
                                a.width(),
                                b.width()
                            )));
                        }
                        let outcome = op.eval(*a, *b);
                        let tag = self.shadow.cmp(*op, (&av.tag, *a), (&bv.tag, *b), outcome);
                        Ok((outcome, tag))
                    }
                    // Pointer comparisons: equality/inequality only, with
                    // integer zero standing in for null.
                    (Raw::Ptr(p), Raw::Ptr(q)) => {
                        let eq = p == q;
                        let outcome = match op {
                            diode_lang::CmpOp::Eq => eq,
                            diode_lang::CmpOp::Ne => !eq,
                            _ => {
                                return Err(Halt::Runtime(
                                    "pointers support only ==/!= comparisons".into(),
                                ))
                            }
                        };
                        Ok((outcome, self.shadow.cond_true()))
                    }
                    (Raw::Ptr(p), Raw::Int(z)) | (Raw::Int(z), Raw::Ptr(p)) => {
                        if !z.is_zero() {
                            return Err(Halt::Runtime(
                                "pointers may only be compared with 0 (null)".into(),
                            ));
                        }
                        let eq = p.is_null();
                        let outcome = match op {
                            diode_lang::CmpOp::Eq => eq,
                            diode_lang::CmpOp::Ne => !eq,
                            _ => {
                                return Err(Halt::Runtime(
                                    "pointers support only ==/!= comparisons".into(),
                                ))
                            }
                        };
                        Ok((outcome, self.shadow.cond_true()))
                    }
                }
            }
            Bexp::Not(inner) => {
                let (v, tag) = self.eval_cond(inner)?;
                Ok((!v, tag))
            }
            Bexp::And(lhs, rhs) => {
                let (va, ta) = self.eval_cond(lhs)?;
                if !va {
                    return Ok((false, ta));
                }
                let (vb, tb) = self.eval_cond(rhs)?;
                Ok((vb, self.shadow.cond_and(ta, tb)))
            }
            Bexp::Or(lhs, rhs) => {
                let (va, ta) = self.eval_cond(lhs)?;
                if va {
                    return Ok((true, ta));
                }
                let (vb, tb) = self.eval_cond(rhs)?;
                Ok((vb, self.shadow.cond_and(ta, tb)))
            }
            Bexp::Crc32Ok { start, len, stored } => {
                let s = self.eval_u64(start)?;
                let l = self.eval_u64(len)?;
                let c = self.eval_u64(stored)?;
                let outcome = self.crc_matches(s, l, c);
                Ok((outcome, self.shadow.cond_true()))
            }
        }
    }

    fn eval_u64(&mut self, e: &Aexp) -> Result<u64, Halt> {
        let v = self.eval(e)?;
        v.as_int()
            .map(|bv| bv.value() as u64)
            .ok_or_else(|| Halt::Runtime("expected an integer".into()))
    }

    /// The `crc32_ok` intrinsic. Its input reads are *not* watched as
    /// divergent and are logged **semantically** (region + outcome, not
    /// bytes): candidate inputs have their checksums repaired by
    /// reconstruction, so the bytes differ while the outcome — the only
    /// thing execution depends on — stays the same.
    fn crc_matches(&mut self, start: u64, len: u64, stored_off: u64) -> bool {
        let outcome = crc_check(self.input, start, len, stored_off);
        if let Some(log) = &mut self.log {
            log.crcs.push((start, len, stored_off, outcome));
        }
        outcome
    }

    /// Records one direct input-byte observation: probe mode notes the
    /// first divergent read's step, capture mode logs the observed value.
    fn observe_read(&mut self, off: u64) {
        if let Some(trace) = &mut self.trace_reads {
            trace.entry(off).or_insert(self.steps);
        }
        if let Some(log) = &mut self.log {
            let val = if off < self.input.len() as u64 {
                self.input[off as usize]
            } else {
                0
            };
            log.reads.entry(off).or_insert(val);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::{Concrete, Symbolic, Taint};
    use diode_lang::parse;

    fn run_concrete(src: &str, input: &[u8]) -> Run<(), ()> {
        run(
            &parse(src).unwrap(),
            input,
            Concrete,
            &MachineConfig::default(),
        )
    }

    #[test]
    fn arithmetic_and_variables() {
        let r = run_concrete(
            "fn main() { x = 2 + 3 * 4; if x != 14 { abort(\"bad\"); } }",
            &[],
        );
        assert_eq!(r.outcome, Outcome::Completed);
    }

    #[test]
    fn input_reads_and_eof_zeroes() {
        let r = run_concrete(
            r#"fn main() {
                a = in[0]; b = in[99];
                if a != 7u8 { abort("a"); }
                if b != 0u8 { abort("b"); }
                if inlen != 2 { abort("len"); }
            }"#,
            &[7, 8],
        );
        assert_eq!(r.outcome, Outcome::Completed);
    }

    #[test]
    fn procedures_and_returns() {
        let r = run_concrete(
            r#"
            fn add3(a, b, c) { return a + b + c; }
            fn main() { s = add3(1, 2, 3); if s != 6 { abort("bad"); } }
            "#,
            &[],
        );
        assert_eq!(r.outcome, Outcome::Completed);
    }

    #[test]
    fn while_loop_and_memory() {
        let r = run_concrete(
            r#"fn main() {
                buf = alloc("t@1", 10);
                i = 0;
                while i < 10 { buf[i] = trunc8(i); i = i + 1; }
                x = buf[7];
                if x != 7u8 { abort("bad"); }
                free(buf);
            }"#,
            &[],
        );
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.mem_errors.is_empty());
        assert_eq!(r.allocs.len(), 1);
        assert_eq!(r.allocs[0].size, Bv::u32(10));
        assert!(!r.allocs[0].size_ovf);
    }

    #[test]
    fn oob_write_recorded_then_wild_write_faults() {
        let r = run_concrete(
            r#"fn main() {
                buf = alloc("t@1", 4);
                buf[4] = 1u8;        // red zone: recorded
                buf[100000] = 1u8;   // wild: segfault
            }"#,
            &[],
        );
        assert!(r.outcome.is_segfault());
        assert_eq!(r.mem_errors.len(), 1);
    }

    #[test]
    fn error_and_abort_outcomes() {
        let r = run_concrete("fn main() { error(\"bad field\"); }", &[]);
        assert_eq!(r.outcome, Outcome::InputRejected("bad field".into()));
        let r = run_concrete("fn main() { warn(\"hmm\"); abort(\"boom\"); }", &[]);
        assert_eq!(r.outcome, Outcome::Aborted("boom".into()));
        assert_eq!(r.warnings, vec!["hmm".to_string()]);
    }

    #[test]
    fn alloc_failure_null_vs_abort() {
        let r = run_concrete(
            r#"fn main() {
                p = alloc("t@1", 0xFFFFFFFF);
                if p == 0 { error("oom"); }
            }"#,
            &[],
        );
        assert_eq!(r.outcome, Outcome::InputRejected("oom".into()));
        assert!(r.allocs[0].failed);
        let r = run_concrete("fn main() { p = alloc_abort(\"t@1\", 0xFFFFFFFF); }", &[]);
        assert!(matches!(r.outcome, Outcome::Aborted(_)));
    }

    #[test]
    fn null_deref_segfaults() {
        let r = run_concrete(
            r#"fn main() {
                p = alloc("t@1", 0xFFFFFFFF);
                p[0] = 1u8;
            }"#,
            &[],
        );
        assert!(r.outcome.is_segfault());
    }

    #[test]
    fn fuel_bounds_infinite_loops() {
        let cfg = MachineConfig {
            fuel: 1000,
            ..MachineConfig::default()
        };
        let r = run(
            &parse("fn main() { while true { skip; } }").unwrap(),
            &[],
            Concrete,
            &cfg,
        );
        assert_eq!(r.outcome, Outcome::OutOfFuel);
    }

    #[test]
    fn sticky_overflow_reaches_alloc_record() {
        // 16-bit field read as two bytes, multiplied to overflow at 32 bits.
        let src = r#"fn main() {
            w = zext32(in[0]) << 8 | zext32(in[1]);
            h = zext32(in[2]) << 8 | zext32(in[3]);
            size = (w * h) * 70000;
            buf = alloc("t@1", size);
        }"#;
        let small = run_concrete(src, &[0, 2, 0, 2]); // 2*2*70000 fits
        assert!(!small.allocs[0].size_ovf);
        let big = run_concrete(src, &[0xff, 0xff, 0xff, 0xff]);
        assert!(big.allocs[0].size_ovf);
        assert!(big.overflowed_at(big.allocs[0].label));
    }

    #[test]
    fn overflow_flag_propagates_through_memory() {
        let src = r#"fn main() {
            x = zext32(in[0]) * 0x40000000;   // overflows for in[0] >= 4
            buf = alloc("stash@1", 4);
            buf[0] = trunc8(x);
            y = buf[0];
            out = alloc("t@2", zext32(y) + 1);
        }"#;
        let r = run_concrete(src, &[200]);
        assert_eq!(r.allocs.len(), 2);
        assert!(
            r.allocs[1].size_ovf,
            "overflow flag must flow through the heap"
        );
    }

    #[test]
    fn taint_identifies_relevant_bytes() {
        let src = r#"fn main() {
            w = zext32(in[4]) << 8 | zext32(in[5]);
            pad = in[9];
            buf = alloc("t@1", w * 4);
        }"#;
        let r = run(
            &parse(src).unwrap(),
            &[0; 16],
            Taint,
            &MachineConfig::default(),
        );
        assert_eq!(r.allocs[0].size_tag.labels(), &[4, 5]);
    }

    #[test]
    fn symbolic_records_target_expression() {
        let src = r#"fn main() {
            w = zext32(in[0]) << 8 | zext32(in[1]);
            buf = alloc("t@1", w * 8);
        }"#;
        let r = run(
            &parse(src).unwrap(),
            &[0x01, 0x10],
            Symbolic::all_bytes(),
            &MachineConfig::default(),
        );
        let expr = r.allocs[0].size_tag.as_ref().expect("symbolic size");
        // Expression evaluates correctly on arbitrary inputs.
        assert_eq!(expr.eval(&|o| [0x01, 0x10][o as usize]).value(), 0x110 * 8);
        assert_eq!(expr.eval(&|o| [0xff, 0xff][o as usize]).value(), 0xffff * 8);
        assert_eq!(expr.input_bytes(), &[0, 1]);
    }

    #[test]
    fn branch_observations_record_phi() {
        let src = r#"fn main() {
            w = zext32(in[0]);
            if w > 100 { error("too big"); }
            i = 0;
            while i < 3 { i = i + 1; }
            buf = alloc("t@1", w);
        }"#;
        let r = run(
            &parse(src).unwrap(),
            &[50],
            Symbolic::all_bytes(),
            &MachineConfig::default(),
        );
        assert_eq!(r.outcome, Outcome::Completed);
        // 1 if + 4 while evaluations (3 taken + 1 exit).
        assert_eq!(r.branches.len(), 5);
        let sanity = &r.branches[0];
        assert!(!sanity.taken);
        let c = sanity.constraint.as_ref().expect("tainted condition");
        // Oriented: holds for inputs that take the same direction.
        assert!(c.eval(&|_| 50));
        assert!(!c.eval(&|_| 200));
        // Loop branches are untainted.
        assert!(r.branches[1].constraint.is_none());
        // The alloc saw all 5 branch observations before it.
        assert_eq!(r.allocs[0].branches_before, 5);
    }

    #[test]
    fn short_circuit_condition_constraints() {
        let src = r#"fn main() {
            a = zext32(in[0]);
            b = zext32(in[1]);
            if a > 10 && b > 20 { x = 1; } else { x = 2; }
        }"#;
        // a = 5: second conjunct not evaluated; constraint must only
        // mention byte 0.
        let r = run(
            &parse(src).unwrap(),
            &[5, 0],
            Symbolic::all_bytes(),
            &MachineConfig::default(),
        );
        let c = r.branches[0].constraint.as_ref().unwrap();
        assert_eq!(c.input_bytes(), vec![0]);
        // a = 15, b = 25: both atoms evaluated and oriented true.
        let r = run(
            &parse(src).unwrap(),
            &[15, 25],
            Symbolic::all_bytes(),
            &MachineConfig::default(),
        );
        let c = r.branches[0].constraint.as_ref().unwrap();
        assert_eq!(c.input_bytes(), vec![0, 1]);
        assert!(c.eval(&|o| [15, 25][o as usize]));
        assert!(!c.eval(&|o| [15, 5][o as usize]));
    }

    #[test]
    fn crc_intrinsic_checks_input_checksum() {
        let mut input = vec![b'a', b'b', b'c', b'd'];
        let crc = diode_lang::checksum::crc32(&input);
        input.extend_from_slice(&crc.to_be_bytes());
        let src = r#"fn main() {
            if !crc32_ok(0, 4, 4) { error("bad crc"); }
        }"#;
        let r = run_concrete(src, &input);
        assert_eq!(r.outcome, Outcome::Completed);
        let mut corrupted = input.clone();
        corrupted[1] ^= 1;
        let r = run_concrete(src, &corrupted);
        assert_eq!(r.outcome, Outcome::InputRejected("bad crc".into()));
    }

    #[test]
    fn runtime_errors_are_reported_not_panicking() {
        let r = run_concrete("fn main() { x = y + 1; }", &[]);
        assert!(matches!(r.outcome, Outcome::RuntimeError(m) if m.contains("unbound")));
        let r = run_concrete("fn main() { x = 1u8 + 1u16; }", &[]);
        assert!(matches!(r.outcome, Outcome::RuntimeError(m) if m.contains("width mismatch")));
        let r = run_concrete("fn main() { x = 1; x[0] = 1u8; }", &[]);
        assert!(matches!(r.outcome, Outcome::RuntimeError(_)));
    }

    /// Byte-identity oracle for snapshot tests: the full Debug rendering
    /// covers outcome, memory errors, allocations (values, overflow
    /// flags, tags), branch observations, warnings, and step counts.
    fn image<T: std::fmt::Debug, C: std::fmt::Debug>(r: &Run<T, C>) -> String {
        format!("{r:?}")
    }

    const SNAP_SRC: &str = r#"
        fn be16(p) { return zext32(in[p]) << 8 | zext32(in[p + 1]); }
        fn main() {
            a = be16(0);
            i = 0;
            scratch = alloc("pre@1", 64);
            while i < a {
                scratch[i] = trunc8(i * 3);
                i = i + 1;
            }
            if a > 40 { warn("large prefix field"); }
            b = be16(2);
            if b > 60000 { error("too big"); }
            buf = alloc("t@2", b * 80000);
            free(scratch);
        }
    "#;

    #[test]
    fn probe_finds_first_divergent_read() {
        let p = parse(SNAP_SRC).unwrap();
        let seed = [0, 8, 0, 4];
        // Bytes 2..4 are divergent (the `b` field); bytes 0..2 drive the
        // prefix loop and are read first.
        let (r, probe) = run_probed(&p, &seed, Concrete, &MachineConfig::default(), &[2, 3]);
        assert_eq!(r.outcome, Outcome::Completed);
        let step = probe.expect("b is read on this path");
        // The prefix (field a, the 8-iteration loop) executes first, so
        // the divergent read happens well past the first statements.
        assert!(step > 10, "divergent read at step {step}");
        // A watch on the first field fires at the very first statement's
        // call argument evaluation instead.
        let (_, early) = run_probed(&p, &seed, Concrete, &MachineConfig::default(), &[0, 1]);
        assert!(early.expect("a is read") < step);
    }

    #[test]
    fn capture_and_resume_are_byte_identical() {
        let p = parse(SNAP_SRC).unwrap();
        let seed = [0, 8, 0, 4];
        let cfg = MachineConfig::default();
        let (_, probe) = run_probed(&p, &seed, Concrete, &cfg, &[2, 3]);
        let (full, snap) = run_and_capture(&p, &seed, Concrete, &cfg, probe.unwrap());
        let snap = snap.expect("capture point reached");
        assert!(snap.steps() > 0);
        assert_eq!(image(&full), image(&run(&p, &seed, Concrete, &cfg)));
        // Resume on candidates that differ only in the divergent field:
        // a triggering one (b = 0xEA60 = 60000, 60000*80000 wraps) and a
        // rejected one (b = 0xFFFF fails the check).
        for cand in [
            vec![0, 8, 0xEA, 0x60],
            vec![0, 8, 0xFF, 0xFF],
            seed.to_vec(),
        ] {
            let resumed = run_from(&p, &cand, &snap, &cfg).expect("prefix agrees");
            let scratch = run(&p, &cand, Concrete, &cfg);
            assert_eq!(image(&resumed), image(&scratch), "input {cand:02x?}");
            assert_eq!(resumed.steps, scratch.steps);
        }
    }

    #[test]
    fn resume_refuses_divergent_prefixes() {
        let p = parse(SNAP_SRC).unwrap();
        let seed = [0, 8, 0, 4];
        let cfg = MachineConfig::default();
        let (_, probe) = run_probed(&p, &seed, Concrete, &cfg, &[2, 3]);
        let (_, snap) = run_and_capture(&p, &seed, Concrete, &cfg, probe.unwrap());
        let snap = snap.unwrap();
        // Byte 1 feeds the prefix loop: a snapshot resumed on an input
        // that disagrees there would replay the wrong prefix, so the
        // validation log must reject it.
        assert!(run_from(&p, &[0, 9, 0, 4], &snap, &cfg).is_none());
        assert!(snap.reads_logged() >= 2);
    }

    #[test]
    fn crc_checks_validate_semantically() {
        // The checksum covers the divergent field, so its *bytes* differ
        // between candidates — but reconstruction repairs the stored CRC,
        // and validation compares outcomes, not bytes.
        let src = r#"fn main() {
            if !crc32_ok(0, 2, 2) { error("bad crc"); }
            pad = in[6];
            n = zext32(in[0]) << 8 | zext32(in[1]);
            buf = alloc("t@1", n * 70000);
        }"#;
        let p = parse(src).unwrap();
        let build = |n: u16| {
            let mut v = n.to_be_bytes().to_vec();
            v.extend_from_slice(&diode_lang::checksum::crc32(&v.clone()).to_be_bytes());
            v.push(0xaa);
            v
        };
        let seed = build(4);
        let cfg = MachineConfig::default();
        // The divergent field is read by the crc intrinsic first, but that
        // read is semantic: the probe only fires at the direct in[0] read.
        let (_, probe) = run_probed(&p, &seed, Concrete, &cfg, &[0, 1]);
        let (_, snap) = run_and_capture(&p, &seed, Concrete, &cfg, probe.unwrap());
        let snap = snap.unwrap();
        // A repaired candidate with a different field value resumes...
        let cand = build(0xFFFF);
        let resumed = run_from(&p, &cand, &snap, &cfg).expect("repaired crc validates");
        assert_eq!(image(&resumed), image(&run(&p, &cand, Concrete, &cfg)));
        // ...while a corrupted one (crc outcome flips) is refused.
        let mut corrupt = build(0xFFFF);
        corrupt[3] ^= 1;
        assert!(run_from(&p, &corrupt, &snap, &cfg).is_none());
    }

    #[test]
    fn capture_inside_call_and_loop_restores_control() {
        // The capture point lands mid-loop inside a callee frame; the
        // rebuilt control stack must resume exactly there.
        let src = r#"
            fn fill(n) {
                buf = alloc("inner@1", 32);
                j = 0;
                while j < n {
                    buf[j] = trunc8(zext32(in[4]) + j);
                    j = j + 1;
                }
                return j;
            }
            fn main() {
                pre = zext32(in[0]);
                k = fill(pre + 3);
                post = zext32(in[8]);
                out = alloc("t@2", post * 90000);
            }
        "#;
        let p = parse(src).unwrap();
        let seed = [5, 0, 0, 0, 7, 0, 0, 0, 1];
        let cfg = MachineConfig::default();
        let (_, probe) = run_probed(&p, &seed, Concrete, &cfg, &[4]);
        let step = probe.expect("in[4] read inside the loop");
        // Capture one step *after* the first in[4] read as well, to land
        // mid-loop with the callee frame live.
        for target in [step, step + 2] {
            let (full, snap) = run_and_capture(&p, &seed, Concrete, &cfg, target);
            let snap = snap.expect("capture point reached");
            assert_eq!(image(&full), image(&run(&p, &seed, Concrete, &cfg)));
            let mut cand = seed.to_vec();
            cand[8] = 0xEA; // post * 90000 overflows
            if let Some(resumed) = run_from(&p, &cand, &snap, &cfg) {
                assert_eq!(image(&resumed), image(&run(&p, &cand, Concrete, &cfg)));
            } else {
                // Snapshot past the in[4] read logs byte 4 — candidates
                // agreeing there must validate.
                panic!("candidate agrees on every logged byte");
            }
        }
    }

    #[test]
    fn taint_and_symbolic_snapshots_resume_identically() {
        let p = parse(SNAP_SRC).unwrap();
        let seed = [0, 8, 0, 4];
        let cfg = MachineConfig::default();
        let cand = vec![0, 8, 0xEA, 0x60];
        let (_, probe) = run_probed(&p, &seed, Taint, &cfg, &[2, 3]);
        let (_, snap) = run_and_capture(&p, &seed, Taint, &cfg, probe.unwrap());
        let resumed = run_from(&p, &cand, &snap.unwrap(), &cfg).unwrap();
        assert_eq!(image(&resumed), image(&run(&p, &cand, Taint, &cfg)));

        let sym = Symbolic::all_bytes();
        let (_, probe) = run_probed(&p, &seed, sym.clone(), &cfg, &[2, 3]);
        let (_, snap) = run_and_capture(&p, &seed, sym.clone(), &cfg, probe.unwrap());
        let resumed = run_from(&p, &cand, &snap.unwrap(), &cfg).unwrap();
        assert_eq!(image(&resumed), image(&run(&p, &cand, sym, &cfg)));
    }

    #[test]
    fn run_halting_before_capture_point_yields_no_snapshot() {
        let p = parse(SNAP_SRC).unwrap();
        let cfg = MachineConfig::default();
        // b = 0xFFFF is rejected before... actually the error sits *after*
        // the capture point; instead pick a capture step beyond the run's
        // length to exercise the no-capture path.
        let (r, snap) = run_and_capture(&p, &[0, 8, 0, 4], Concrete, &cfg, 1_000_000);
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(snap.is_none());
    }

    #[test]
    fn branch_recording_can_be_disabled() {
        let cfg = MachineConfig {
            record_branches: false,
            ..MachineConfig::default()
        };
        let r = run(
            &parse("fn main() { i = 0; while i < 10 { i = i + 1; } }").unwrap(),
            &[],
            Concrete,
            &cfg,
        );
        assert!(r.branches.is_empty());
        assert_eq!(r.outcome, Outcome::Completed);
    }
}
