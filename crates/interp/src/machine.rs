//! The interpreter: concrete + shadow execution of core-language programs.
//!
//! Implements the operational semantics of the paper's Figures 4–6. A
//! program state is ⟨ℓ, ρ, m, φ⟩: the current statement, an environment
//! mapping variables to (value, shadow) pairs, a memory mapping
//! (base, offset) to (value, shadow) pairs, and the recorded branch
//! condition sequence φ. The interpreter executes the whole transition
//! relation, producing a [`Run`] that contains everything DIODE's pipeline
//! consumes: the allocation records (target sites with their size values
//! and symbolic target expressions), the branch observation sequence φ,
//! memcheck-style memory errors, and the final outcome.

use std::collections::HashMap;

use diode_lang::checksum::crc32;
use diode_lang::{Aexp, Bexp, Block, Bv, CastKind, Label, Program, Stmt, Symbol, UnOp};
use diode_symbolic::eval_bin;

use crate::heap::{Cell, Fault, Heap, MemError};
use crate::shadow::Shadow;
use crate::value::{BlockId, Raw, Value};

/// Interpreter limits and switches.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Maximum number of executed statements (including loop-condition
    /// evaluations). Overflow-triggering inputs routinely send programs
    /// into giant loops; fuel bounds every run.
    pub fuel: u64,
    /// Record the branch observation sequence φ. Disable for plain
    /// did-it-crash candidate runs to save memory.
    pub record_branches: bool,
    /// Allocator single-request limit in bytes (requests ≥ limit fail).
    pub alloc_limit: u64,
    /// Red zone: out-of-bounds accesses within this many bytes past a
    /// block are recorded; farther accesses segfault.
    pub redzone: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            fuel: 5_000_000,
            record_branches: true,
            alloc_limit: 1 << 31,
            redzone: 4096,
            max_call_depth: 128,
        }
    }
}

/// One observed conditional branch (an element ⟨ℓ, B⟩ of φ, §3.2).
#[derive(Debug, Clone)]
pub struct BranchObs<C> {
    /// Label of the `if`/`while` statement.
    pub label: Label,
    /// Direction taken (condition outcome).
    pub taken: bool,
    /// Shadow condition tag, already *oriented*: it asserts "the condition
    /// evaluates exactly as observed" (for the symbolic policy this is the
    /// branch constraint of §1.1).
    pub constraint: C,
}

/// One dynamic execution of an allocation site.
#[derive(Debug, Clone)]
pub struct AllocRecord<T> {
    /// Label of the `alloc` statement (the target label ℓ).
    pub label: Label,
    /// Site name (`file@line`).
    pub site: std::sync::Arc<str>,
    /// Concrete size argument (the target value).
    pub size: Bv,
    /// True if the computation of the size overflowed (sticky flag): the
    /// ground truth for "the input triggers an overflow at ℓ".
    pub size_ovf: bool,
    /// Shadow tag of the size: taint labels (stage 1, the relevant input
    /// bytes) or the symbolic target expression (stage 2).
    pub size_tag: T,
    /// True if the allocator refused the request.
    pub failed: bool,
    /// Number of branch observations recorded before this allocation
    /// executed — φ restricted to the path *to* this site.
    pub branches_before: usize,
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// `main` finished normally.
    Completed,
    /// The program rejected its input via `error(msg)` (e.g. `png_error`).
    InputRejected(String),
    /// The program aborted (`abort(msg)` or failed `alloc_abort`) — the
    /// paper's SIGABRT rows.
    Aborted(String),
    /// A memory fault (null dereference / wild access) — SIGSEGV.
    Segfault(Fault),
    /// The fuel limit was exhausted.
    OutOfFuel,
    /// The program itself is ill-formed (width mismatch, unbound variable,
    /// type confusion). Benchmark programs must never reach this.
    RuntimeError(String),
}

impl Outcome {
    /// True for SIGSEGV.
    #[must_use]
    pub fn is_segfault(&self) -> bool {
        matches!(self, Outcome::Segfault(_))
    }
}

/// Everything observed during one execution.
#[derive(Debug)]
pub struct Run<T, C> {
    /// Final outcome.
    pub outcome: Outcome,
    /// Memcheck-style errors, in occurrence order.
    pub mem_errors: Vec<MemError>,
    /// Dynamic allocation records, in occurrence order.
    pub allocs: Vec<AllocRecord<T>>,
    /// The branch observation sequence φ (empty if recording disabled).
    pub branches: Vec<BranchObs<C>>,
    /// Messages from `warn(..)` statements.
    pub warnings: Vec<String>,
    /// Statements executed.
    pub steps: u64,
}

impl<T, C> Run<T, C> {
    /// Allocation records for a specific site label.
    pub fn allocs_at(&self, label: Label) -> impl Iterator<Item = &AllocRecord<T>> {
        self.allocs.iter().filter(move |a| a.label == label)
    }

    /// True if the run triggered an overflow at the given site: the site
    /// executed with an overflowed size computation (§4.6's verification).
    #[must_use]
    pub fn overflowed_at(&self, label: Label) -> bool {
        self.allocs_at(label).any(|a| a.size_ovf)
    }
}

/// Executes `program` on `input` under the given shadow policy.
///
/// This is the single entry point used by all of DIODE's stages; the choice
/// of `shadow` selects taint tracing, symbolic recording, or plain
/// execution.
pub fn run<S: Shadow>(
    program: &Program,
    input: &[u8],
    shadow: S,
    config: &MachineConfig,
) -> Run<S::Tag, S::CondTag> {
    let mut m = Machine {
        program,
        input,
        shadow,
        config,
        heap: Heap::new(config.alloc_limit, config.redzone),
        frames: vec![HashMap::new()],
        branches: Vec::new(),
        allocs: Vec::new(),
        warnings: Vec::new(),
        steps: 0,
    };
    let entry = program.proc(program.entry());
    let outcome = if entry.params.is_empty() {
        match m.exec_block(&entry.body) {
            Ok(_) => Outcome::Completed,
            Err(halt) => halt.into_outcome(),
        }
    } else {
        Outcome::RuntimeError("main must not take parameters".into())
    };
    Run {
        outcome,
        mem_errors: m.heap.into_errors(),
        allocs: m.allocs,
        branches: m.branches,
        warnings: m.warnings,
        steps: m.steps,
    }
}

enum Halt {
    Rejected(String),
    Aborted(String),
    Fault(Fault),
    Fuel,
    Runtime(String),
}

impl Halt {
    fn into_outcome(self) -> Outcome {
        match self {
            Halt::Rejected(m) => Outcome::InputRejected(m),
            Halt::Aborted(m) => Outcome::Aborted(m),
            Halt::Fault(f) => Outcome::Segfault(f),
            Halt::Fuel => Outcome::OutOfFuel,
            Halt::Runtime(m) => Outcome::RuntimeError(m),
        }
    }
}

enum Flow<T> {
    Normal,
    Return(Option<Value<T>>),
}

struct Machine<'a, S: Shadow> {
    program: &'a Program,
    input: &'a [u8],
    shadow: S,
    config: &'a MachineConfig,
    heap: Heap<S::Tag>,
    frames: Vec<HashMap<Symbol, Value<S::Tag>>>,
    branches: Vec<BranchObs<S::CondTag>>,
    allocs: Vec<AllocRecord<S::Tag>>,
    warnings: Vec<String>,
    steps: u64,
}

impl<'a, S: Shadow> Machine<'a, S> {
    fn frame(&mut self) -> &mut HashMap<Symbol, Value<S::Tag>> {
        self.frames.last_mut().expect("frame stack never empty")
    }

    fn tick(&mut self) -> Result<(), Halt> {
        self.steps += 1;
        if self.steps > self.config.fuel {
            Err(Halt::Fuel)
        } else {
            Ok(())
        }
    }

    fn var_name(&self, sym: Symbol) -> &str {
        self.program.interner().name(sym)
    }

    fn exec_block(&mut self, block: &Block) -> Result<Flow<S::Tag>, Halt> {
        for stmt in block.stmts() {
            if let Flow::Return(v) = self.exec_stmt(stmt)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow<S::Tag>, Halt> {
        self.tick()?;
        match stmt {
            Stmt::Skip(_) => Ok(Flow::Normal),
            Stmt::Assign(_, dst, e) => {
                let v = self.eval(e)?;
                self.frame().insert(*dst, v);
                Ok(Flow::Normal)
            }
            Stmt::Call {
                dst, proc, args, ..
            } => {
                if self.frames.len() >= self.config.max_call_depth {
                    return Err(Halt::Runtime("call depth limit exceeded".into()));
                }
                let callee = self.program.proc(*proc);
                if callee.params.len() != args.len() {
                    return Err(Halt::Runtime(format!(
                        "procedure `{}` expects {} arguments, got {}",
                        callee.name,
                        callee.params.len(),
                        args.len()
                    )));
                }
                let mut new_frame = HashMap::new();
                for (param, arg) in callee.params.iter().zip(args) {
                    let v = self.eval(arg)?;
                    new_frame.insert(*param, v);
                }
                self.frames.push(new_frame);
                let flow = self.exec_block(&callee.body);
                self.frames.pop();
                match flow? {
                    Flow::Return(Some(v)) => {
                        if let Some(dst) = dst {
                            self.frame().insert(*dst, v);
                        }
                        Ok(Flow::Normal)
                    }
                    Flow::Return(None) | Flow::Normal => {
                        if dst.is_some() {
                            return Err(Halt::Runtime(format!(
                                "procedure `{}` returned no value",
                                callee.name
                            )));
                        }
                        Ok(Flow::Normal)
                    }
                }
            }
            Stmt::Alloc {
                label,
                site,
                dst,
                size,
                abort_on_fail,
            } => {
                let sv = self.eval(size)?;
                let Some(bv) = sv.as_int() else {
                    return Err(Halt::Runtime("allocation size must be an integer".into()));
                };
                if bv.width() != 32 {
                    return Err(Halt::Runtime(format!(
                        "allocation size must be 32 bits wide, got {} bits at {site}",
                        bv.width()
                    )));
                }
                let size32 = bv.value() as u32;
                let block = self.heap.alloc(site.clone(), size32);
                self.allocs.push(AllocRecord {
                    label: *label,
                    site: site.clone(),
                    size: bv,
                    size_ovf: sv.ovf,
                    size_tag: sv.tag.clone(),
                    failed: block.is_none(),
                    branches_before: self.branches.len(),
                });
                match block {
                    Some(b) => {
                        self.frame().insert(*dst, Value::ptr(b));
                        Ok(Flow::Normal)
                    }
                    None if *abort_on_fail => Err(Halt::Aborted(format!(
                        "allocation of {size32} bytes failed at {site}"
                    ))),
                    None => {
                        self.frame().insert(*dst, Value::ptr(BlockId::NULL));
                        Ok(Flow::Normal)
                    }
                }
            }
            Stmt::Free(label, ptr) => {
                let v = self.lookup(*ptr)?;
                let Some(b) = v.as_ptr() else {
                    return Err(Halt::Runtime(format!(
                        "free of non-pointer `{}`",
                        self.var_name(*ptr)
                    )));
                };
                self.heap.free(b, *label);
                Ok(Flow::Normal)
            }
            Stmt::Load {
                label,
                dst,
                base,
                offset,
            } => {
                let ptr = self.lookup(*base)?;
                let Some(b) = ptr.as_ptr() else {
                    return Err(Halt::Runtime(format!(
                        "load through non-pointer `{}`",
                        self.var_name(*base)
                    )));
                };
                let off = self.eval(offset)?;
                let Some(off) = off.as_int() else {
                    return Err(Halt::Runtime("load offset must be an integer".into()));
                };
                let cell = self
                    .heap
                    .load(b, off.value() as u64, *label)
                    .map_err(Halt::Fault)?;
                self.frame().insert(
                    *dst,
                    Value {
                        raw: Raw::Int(cell.value),
                        ovf: cell.ovf,
                        tag: cell.tag,
                    },
                );
                Ok(Flow::Normal)
            }
            Stmt::Store {
                label,
                base,
                offset,
                value,
            } => {
                let ptr = self.lookup(*base)?;
                let Some(b) = ptr.as_ptr() else {
                    return Err(Halt::Runtime(format!(
                        "store through non-pointer `{}`",
                        self.var_name(*base)
                    )));
                };
                let off = self.eval(offset)?;
                let Some(off) = off.as_int() else {
                    return Err(Halt::Runtime("store offset must be an integer".into()));
                };
                let v = self.eval(value)?;
                let Some(bv) = v.as_int() else {
                    return Err(Halt::Runtime("stored value must be an integer".into()));
                };
                if bv.width() != 8 {
                    return Err(Halt::Runtime(format!(
                        "memory cells are bytes; stored value is {} bits wide",
                        bv.width()
                    )));
                }
                self.heap
                    .store(
                        b,
                        off.value() as u64,
                        Cell {
                            value: bv,
                            ovf: v.ovf,
                            tag: v.tag,
                        },
                        *label,
                    )
                    .map_err(Halt::Fault)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                label,
                cond,
                then_blk,
                else_blk,
            } => {
                let (taken, constraint) = self.eval_cond(cond)?;
                if self.config.record_branches {
                    self.branches.push(BranchObs {
                        label: *label,
                        taken,
                        constraint,
                    });
                }
                if taken {
                    self.exec_block(then_blk)
                } else {
                    self.exec_block(else_blk)
                }
            }
            Stmt::While { label, cond, body } => {
                loop {
                    self.tick()?;
                    let (taken, constraint) = self.eval_cond(cond)?;
                    if self.config.record_branches {
                        self.branches.push(BranchObs {
                            label: *label,
                            taken,
                            constraint,
                        });
                    }
                    if !taken {
                        break;
                    }
                    if let Flow::Return(v) = self.exec_block(body)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Error(_, msg) => Err(Halt::Rejected(msg.clone())),
            Stmt::Warn(_, msg) => {
                self.warnings.push(msg.clone());
                Ok(Flow::Normal)
            }
            Stmt::Abort(_, msg) => Err(Halt::Aborted(msg.clone())),
            Stmt::Return(_, None) => Ok(Flow::Return(None)),
            Stmt::Return(_, Some(e)) => {
                let v = self.eval(e)?;
                Ok(Flow::Return(Some(v)))
            }
        }
    }

    fn lookup(&mut self, sym: Symbol) -> Result<Value<S::Tag>, Halt> {
        match self.frames.last().expect("frame").get(&sym) {
            Some(v) => Ok(v.clone()),
            None => Err(Halt::Runtime(format!(
                "use of unbound variable `{}`",
                self.var_name(sym)
            ))),
        }
    }

    fn eval(&mut self, e: &Aexp) -> Result<Value<S::Tag>, Halt> {
        match e {
            Aexp::Const(bv) => Ok(Value::int(*bv)),
            Aexp::Var(sym) => self.lookup(*sym),
            Aexp::InLen => Ok(Value::int(Bv::u32(
                u32::try_from(self.input.len()).unwrap_or(u32::MAX),
            ))),
            Aexp::InByte(idx) => {
                let iv = self.eval(idx)?;
                let Some(off) = iv.as_int() else {
                    return Err(Halt::Runtime("input index must be an integer".into()));
                };
                let off64 = off.value() as u64;
                // Reads past the end of the input behave like reads past
                // EOF: they produce zero, untainted bytes.
                if off64 >= self.input.len() as u64 {
                    return Ok(Value::int(Bv::byte(0)));
                }
                let offset = off64 as u32;
                let byte = self.input[offset as usize];
                let tag = self.shadow.input_byte(offset);
                Ok(Value {
                    raw: Raw::Int(Bv::byte(byte)),
                    ovf: false,
                    tag,
                })
            }
            Aexp::Un(op, a) => {
                let av = self.eval(a)?;
                let Some(abv) = av.as_int() else {
                    return Err(Halt::Runtime("unary operand must be an integer".into()));
                };
                let (result, ovf) = match op {
                    UnOp::Neg => abv.neg(),
                    UnOp::Not => (abv.not(), false),
                };
                let tag = self.shadow.un(*op, (&av.tag, abv));
                Ok(Value {
                    raw: Raw::Int(result),
                    ovf: av.ovf | ovf,
                    tag,
                })
            }
            Aexp::Bin(op, a, b) => {
                let av = self.eval(a)?;
                let bv = self.eval(b)?;
                let (Some(abv), Some(bbv)) = (av.as_int(), bv.as_int()) else {
                    return Err(Halt::Runtime(format!(
                        "binary operands of {op:?} must be integers"
                    )));
                };
                if abv.width() != bbv.width() {
                    return Err(Halt::Runtime(format!(
                        "width mismatch in {op:?}: {} vs {} bits",
                        abv.width(),
                        bbv.width()
                    )));
                }
                let (result, ovf) = eval_bin(*op, abv, bbv);
                let tag = self.shadow.bin(*op, (&av.tag, abv), (&bv.tag, bbv));
                Ok(Value {
                    raw: Raw::Int(result),
                    ovf: av.ovf | bv.ovf | ovf,
                    tag,
                })
            }
            Aexp::Cast(kind, width, a) => {
                let av = self.eval(a)?;
                let Some(abv) = av.as_int() else {
                    return Err(Halt::Runtime("cast operand must be an integer".into()));
                };
                let (result, ovf) = match kind {
                    CastKind::Zext if *width > abv.width() => (abv.zext(*width), false),
                    CastKind::Sext if *width > abv.width() => (abv.sext(*width), false),
                    CastKind::Trunc if *width < abv.width() => abv.trunc(*width),
                    _ => {
                        return Err(Halt::Runtime(format!(
                            "invalid cast {kind:?} from {} to {} bits",
                            abv.width(),
                            width
                        )))
                    }
                };
                let tag = self.shadow.cast(*kind, *width, (&av.tag, abv));
                Ok(Value {
                    raw: Raw::Int(result),
                    ovf: av.ovf | ovf,
                    tag,
                })
            }
        }
    }

    /// Evaluates a boolean condition with short-circuit semantics,
    /// returning the outcome and the accumulated, oriented condition tag
    /// (the conjunction of every evaluated atom forced to its observed
    /// truth value — i.e. "the condition evaluates the same way").
    fn eval_cond(&mut self, b: &Bexp) -> Result<(bool, S::CondTag), Halt> {
        match b {
            Bexp::Const(v) => {
                let t = self.shadow.cond_true();
                Ok((*v, t))
            }
            Bexp::Cmp(op, lhs, rhs) => {
                let av = self.eval(lhs)?;
                let bv = self.eval(rhs)?;
                match (&av.raw, &bv.raw) {
                    (Raw::Int(a), Raw::Int(b)) => {
                        if a.width() != b.width() {
                            return Err(Halt::Runtime(format!(
                                "comparison width mismatch: {} vs {} bits",
                                a.width(),
                                b.width()
                            )));
                        }
                        let outcome = op.eval(*a, *b);
                        let tag = self.shadow.cmp(*op, (&av.tag, *a), (&bv.tag, *b), outcome);
                        Ok((outcome, tag))
                    }
                    // Pointer comparisons: equality/inequality only, with
                    // integer zero standing in for null.
                    (Raw::Ptr(p), Raw::Ptr(q)) => {
                        let eq = p == q;
                        let outcome = match op {
                            diode_lang::CmpOp::Eq => eq,
                            diode_lang::CmpOp::Ne => !eq,
                            _ => {
                                return Err(Halt::Runtime(
                                    "pointers support only ==/!= comparisons".into(),
                                ))
                            }
                        };
                        Ok((outcome, self.shadow.cond_true()))
                    }
                    (Raw::Ptr(p), Raw::Int(z)) | (Raw::Int(z), Raw::Ptr(p)) => {
                        if !z.is_zero() {
                            return Err(Halt::Runtime(
                                "pointers may only be compared with 0 (null)".into(),
                            ));
                        }
                        let eq = p.is_null();
                        let outcome = match op {
                            diode_lang::CmpOp::Eq => eq,
                            diode_lang::CmpOp::Ne => !eq,
                            _ => {
                                return Err(Halt::Runtime(
                                    "pointers support only ==/!= comparisons".into(),
                                ))
                            }
                        };
                        Ok((outcome, self.shadow.cond_true()))
                    }
                }
            }
            Bexp::Not(inner) => {
                let (v, tag) = self.eval_cond(inner)?;
                Ok((!v, tag))
            }
            Bexp::And(lhs, rhs) => {
                let (va, ta) = self.eval_cond(lhs)?;
                if !va {
                    return Ok((false, ta));
                }
                let (vb, tb) = self.eval_cond(rhs)?;
                Ok((vb, self.shadow.cond_and(ta, tb)))
            }
            Bexp::Or(lhs, rhs) => {
                let (va, ta) = self.eval_cond(lhs)?;
                if va {
                    return Ok((true, ta));
                }
                let (vb, tb) = self.eval_cond(rhs)?;
                Ok((vb, self.shadow.cond_and(ta, tb)))
            }
            Bexp::Crc32Ok { start, len, stored } => {
                let s = self.eval_u64(start)?;
                let l = self.eval_u64(len)?;
                let c = self.eval_u64(stored)?;
                let outcome = self.crc_matches(s, l, c);
                Ok((outcome, self.shadow.cond_true()))
            }
        }
    }

    fn eval_u64(&mut self, e: &Aexp) -> Result<u64, Halt> {
        let v = self.eval(e)?;
        v.as_int()
            .map(|bv| bv.value() as u64)
            .ok_or_else(|| Halt::Runtime("expected an integer".into()))
    }

    fn crc_matches(&self, start: u64, len: u64, stored_off: u64) -> bool {
        let end = start.saturating_add(len);
        let input_len = self.input.len() as u64;
        if end > input_len || stored_off.saturating_add(4) > input_len {
            return false;
        }
        let data = &self.input[start as usize..end as usize];
        let stored = u32::from_be_bytes(
            self.input[stored_off as usize..stored_off as usize + 4]
                .try_into()
                .expect("4 bytes"),
        );
        crc32(data) == stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::{Concrete, Symbolic, Taint};
    use diode_lang::parse;

    fn run_concrete(src: &str, input: &[u8]) -> Run<(), ()> {
        run(
            &parse(src).unwrap(),
            input,
            Concrete,
            &MachineConfig::default(),
        )
    }

    #[test]
    fn arithmetic_and_variables() {
        let r = run_concrete(
            "fn main() { x = 2 + 3 * 4; if x != 14 { abort(\"bad\"); } }",
            &[],
        );
        assert_eq!(r.outcome, Outcome::Completed);
    }

    #[test]
    fn input_reads_and_eof_zeroes() {
        let r = run_concrete(
            r#"fn main() {
                a = in[0]; b = in[99];
                if a != 7u8 { abort("a"); }
                if b != 0u8 { abort("b"); }
                if inlen != 2 { abort("len"); }
            }"#,
            &[7, 8],
        );
        assert_eq!(r.outcome, Outcome::Completed);
    }

    #[test]
    fn procedures_and_returns() {
        let r = run_concrete(
            r#"
            fn add3(a, b, c) { return a + b + c; }
            fn main() { s = add3(1, 2, 3); if s != 6 { abort("bad"); } }
            "#,
            &[],
        );
        assert_eq!(r.outcome, Outcome::Completed);
    }

    #[test]
    fn while_loop_and_memory() {
        let r = run_concrete(
            r#"fn main() {
                buf = alloc("t@1", 10);
                i = 0;
                while i < 10 { buf[i] = trunc8(i); i = i + 1; }
                x = buf[7];
                if x != 7u8 { abort("bad"); }
                free(buf);
            }"#,
            &[],
        );
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.mem_errors.is_empty());
        assert_eq!(r.allocs.len(), 1);
        assert_eq!(r.allocs[0].size, Bv::u32(10));
        assert!(!r.allocs[0].size_ovf);
    }

    #[test]
    fn oob_write_recorded_then_wild_write_faults() {
        let r = run_concrete(
            r#"fn main() {
                buf = alloc("t@1", 4);
                buf[4] = 1u8;        // red zone: recorded
                buf[100000] = 1u8;   // wild: segfault
            }"#,
            &[],
        );
        assert!(r.outcome.is_segfault());
        assert_eq!(r.mem_errors.len(), 1);
    }

    #[test]
    fn error_and_abort_outcomes() {
        let r = run_concrete("fn main() { error(\"bad field\"); }", &[]);
        assert_eq!(r.outcome, Outcome::InputRejected("bad field".into()));
        let r = run_concrete("fn main() { warn(\"hmm\"); abort(\"boom\"); }", &[]);
        assert_eq!(r.outcome, Outcome::Aborted("boom".into()));
        assert_eq!(r.warnings, vec!["hmm".to_string()]);
    }

    #[test]
    fn alloc_failure_null_vs_abort() {
        let r = run_concrete(
            r#"fn main() {
                p = alloc("t@1", 0xFFFFFFFF);
                if p == 0 { error("oom"); }
            }"#,
            &[],
        );
        assert_eq!(r.outcome, Outcome::InputRejected("oom".into()));
        assert!(r.allocs[0].failed);
        let r = run_concrete("fn main() { p = alloc_abort(\"t@1\", 0xFFFFFFFF); }", &[]);
        assert!(matches!(r.outcome, Outcome::Aborted(_)));
    }

    #[test]
    fn null_deref_segfaults() {
        let r = run_concrete(
            r#"fn main() {
                p = alloc("t@1", 0xFFFFFFFF);
                p[0] = 1u8;
            }"#,
            &[],
        );
        assert!(r.outcome.is_segfault());
    }

    #[test]
    fn fuel_bounds_infinite_loops() {
        let cfg = MachineConfig {
            fuel: 1000,
            ..MachineConfig::default()
        };
        let r = run(
            &parse("fn main() { while true { skip; } }").unwrap(),
            &[],
            Concrete,
            &cfg,
        );
        assert_eq!(r.outcome, Outcome::OutOfFuel);
    }

    #[test]
    fn sticky_overflow_reaches_alloc_record() {
        // 16-bit field read as two bytes, multiplied to overflow at 32 bits.
        let src = r#"fn main() {
            w = zext32(in[0]) << 8 | zext32(in[1]);
            h = zext32(in[2]) << 8 | zext32(in[3]);
            size = (w * h) * 70000;
            buf = alloc("t@1", size);
        }"#;
        let small = run_concrete(src, &[0, 2, 0, 2]); // 2*2*70000 fits
        assert!(!small.allocs[0].size_ovf);
        let big = run_concrete(src, &[0xff, 0xff, 0xff, 0xff]);
        assert!(big.allocs[0].size_ovf);
        assert!(big.overflowed_at(big.allocs[0].label));
    }

    #[test]
    fn overflow_flag_propagates_through_memory() {
        let src = r#"fn main() {
            x = zext32(in[0]) * 0x40000000;   // overflows for in[0] >= 4
            buf = alloc("stash@1", 4);
            buf[0] = trunc8(x);
            y = buf[0];
            out = alloc("t@2", zext32(y) + 1);
        }"#;
        let r = run_concrete(src, &[200]);
        assert_eq!(r.allocs.len(), 2);
        assert!(
            r.allocs[1].size_ovf,
            "overflow flag must flow through the heap"
        );
    }

    #[test]
    fn taint_identifies_relevant_bytes() {
        let src = r#"fn main() {
            w = zext32(in[4]) << 8 | zext32(in[5]);
            pad = in[9];
            buf = alloc("t@1", w * 4);
        }"#;
        let r = run(
            &parse(src).unwrap(),
            &[0; 16],
            Taint,
            &MachineConfig::default(),
        );
        assert_eq!(r.allocs[0].size_tag.labels(), &[4, 5]);
    }

    #[test]
    fn symbolic_records_target_expression() {
        let src = r#"fn main() {
            w = zext32(in[0]) << 8 | zext32(in[1]);
            buf = alloc("t@1", w * 8);
        }"#;
        let r = run(
            &parse(src).unwrap(),
            &[0x01, 0x10],
            Symbolic::all_bytes(),
            &MachineConfig::default(),
        );
        let expr = r.allocs[0].size_tag.as_ref().expect("symbolic size");
        // Expression evaluates correctly on arbitrary inputs.
        assert_eq!(expr.eval(&|o| [0x01, 0x10][o as usize]).value(), 0x110 * 8);
        assert_eq!(expr.eval(&|o| [0xff, 0xff][o as usize]).value(), 0xffff * 8);
        assert_eq!(expr.input_bytes(), &[0, 1]);
    }

    #[test]
    fn branch_observations_record_phi() {
        let src = r#"fn main() {
            w = zext32(in[0]);
            if w > 100 { error("too big"); }
            i = 0;
            while i < 3 { i = i + 1; }
            buf = alloc("t@1", w);
        }"#;
        let r = run(
            &parse(src).unwrap(),
            &[50],
            Symbolic::all_bytes(),
            &MachineConfig::default(),
        );
        assert_eq!(r.outcome, Outcome::Completed);
        // 1 if + 4 while evaluations (3 taken + 1 exit).
        assert_eq!(r.branches.len(), 5);
        let sanity = &r.branches[0];
        assert!(!sanity.taken);
        let c = sanity.constraint.as_ref().expect("tainted condition");
        // Oriented: holds for inputs that take the same direction.
        assert!(c.eval(&|_| 50));
        assert!(!c.eval(&|_| 200));
        // Loop branches are untainted.
        assert!(r.branches[1].constraint.is_none());
        // The alloc saw all 5 branch observations before it.
        assert_eq!(r.allocs[0].branches_before, 5);
    }

    #[test]
    fn short_circuit_condition_constraints() {
        let src = r#"fn main() {
            a = zext32(in[0]);
            b = zext32(in[1]);
            if a > 10 && b > 20 { x = 1; } else { x = 2; }
        }"#;
        // a = 5: second conjunct not evaluated; constraint must only
        // mention byte 0.
        let r = run(
            &parse(src).unwrap(),
            &[5, 0],
            Symbolic::all_bytes(),
            &MachineConfig::default(),
        );
        let c = r.branches[0].constraint.as_ref().unwrap();
        assert_eq!(c.input_bytes(), vec![0]);
        // a = 15, b = 25: both atoms evaluated and oriented true.
        let r = run(
            &parse(src).unwrap(),
            &[15, 25],
            Symbolic::all_bytes(),
            &MachineConfig::default(),
        );
        let c = r.branches[0].constraint.as_ref().unwrap();
        assert_eq!(c.input_bytes(), vec![0, 1]);
        assert!(c.eval(&|o| [15, 25][o as usize]));
        assert!(!c.eval(&|o| [15, 5][o as usize]));
    }

    #[test]
    fn crc_intrinsic_checks_input_checksum() {
        let mut input = vec![b'a', b'b', b'c', b'd'];
        let crc = diode_lang::checksum::crc32(&input);
        input.extend_from_slice(&crc.to_be_bytes());
        let src = r#"fn main() {
            if !crc32_ok(0, 4, 4) { error("bad crc"); }
        }"#;
        let r = run_concrete(src, &input);
        assert_eq!(r.outcome, Outcome::Completed);
        let mut corrupted = input.clone();
        corrupted[1] ^= 1;
        let r = run_concrete(src, &corrupted);
        assert_eq!(r.outcome, Outcome::InputRejected("bad crc".into()));
    }

    #[test]
    fn runtime_errors_are_reported_not_panicking() {
        let r = run_concrete("fn main() { x = y + 1; }", &[]);
        assert!(matches!(r.outcome, Outcome::RuntimeError(m) if m.contains("unbound")));
        let r = run_concrete("fn main() { x = 1u8 + 1u16; }", &[]);
        assert!(matches!(r.outcome, Outcome::RuntimeError(m) if m.contains("width mismatch")));
        let r = run_concrete("fn main() { x = 1; x[0] = 1u8; }", &[]);
        assert!(matches!(r.outcome, Outcome::RuntimeError(_)));
    }

    #[test]
    fn branch_recording_can_be_disabled() {
        let cfg = MachineConfig {
            record_branches: false,
            ..MachineConfig::default()
        };
        let r = run(
            &parse("fn main() { i = 0; while i < 10 { i = i + 1; } }").unwrap(),
            &[],
            Concrete,
            &cfg,
        );
        assert!(r.branches.is_empty());
        assert_eq!(r.outcome, Outcome::Completed);
    }
}
