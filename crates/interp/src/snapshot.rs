//! Prefix snapshots: freezing a run mid-flight and resuming it on a new
//! input.
//!
//! DIODE's enforcement loop (paper §3.3, Figure 7) re-executes a fresh
//! candidate input from `main` on every iteration, yet for multi-site
//! programs every candidate traverses the *same* prefix — the parsing and
//! processing of everything before the target site's own fields. A
//! [`Snapshot`] captures the complete machine state at a statement
//! boundary: heap (cheaply, via the heap's `Arc`-backed copy-on-write
//! payloads), shadow policy state, call frames with their environments
//! and control stacks, the recorded branch/allocation/warning prefixes,
//! and the step counter.
//!
//! Soundness does not rest on the caller choosing the snapshot point
//! well: the capture run logs **every input observation of the prefix**
//! — each `in[i]` read (with its value), whether `inlen` was consulted,
//! and the outcome of every `crc32_ok` intrinsic (validated semantically,
//! so checksum-repaired candidates still match even though their CRC
//! bytes differ). [`Snapshot::validates`] replays that log against a new
//! input; only when every observation agrees is the resumed execution
//! guaranteed byte-identical to a from-scratch run, and
//! [`run_from`](crate::run_from) refuses to resume otherwise. The
//! divergence-*probing* run ([`run_probed`](crate::run_probed)) merely
//! picks a good snapshot point (the last statement boundary before the
//! first read of a divergent byte); a bad pick costs resumption misses,
//! never correctness.

use std::collections::HashMap;

use diode_lang::{ProcId, Symbol};

use crate::heap::Heap;
use crate::machine::{AllocRecord, BranchObs};
use crate::shadow::Shadow;
use crate::value::Value;

/// A control-stack entry in program-independent form. Each entry records
/// how its block (or loop head) was entered relative to the entry below
/// it, which is enough to rebuild the borrowed control stack against the
/// same [`Program`](diode_lang::Program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ContImage {
    /// The frame's root block (the procedure body), next stmt at `idx`.
    Root {
        /// Next statement index.
        idx: usize,
    },
    /// The `then` block of the `if` just before the parent entry's index.
    Then {
        /// Next statement index.
        idx: usize,
    },
    /// The `else` block of that `if`.
    Else {
        /// Next statement index.
        idx: usize,
    },
    /// A `while` being iterated (condition evaluation is next); the
    /// statement sits just before the parent entry's index.
    Loop,
    /// The body block of the `Loop` entry directly below.
    LoopBody {
        /// Next statement index.
        idx: usize,
    },
}

/// One call frame in program-independent form.
#[derive(Debug, Clone)]
pub(crate) struct FrameImage<T> {
    /// The procedure this frame executes.
    pub proc: ProcId,
    /// Where the caller stores the frame's return value.
    pub ret_dst: Option<Symbol>,
    /// The local environment.
    pub env: HashMap<Symbol, Value<T>>,
    /// The control stack, outermost first.
    pub control: Vec<ContImage>,
}

/// Input observations made during a prefix, logged by the capture run and
/// replayed by [`Snapshot::validates`].
#[derive(Debug, Default, Clone)]
pub(crate) struct ReadLog {
    /// Every `in[i]` read: offset → observed byte (0 past EOF).
    pub reads: HashMap<u64, u8>,
    /// Every `crc32_ok(start, len, stored)` evaluation and its outcome.
    pub crcs: Vec<(u64, u64, u64, bool)>,
    /// The input length, if `inlen` was consulted.
    pub inlen: Option<u64>,
}

/// A frozen machine state at a statement boundary, resumable on any input
/// that [`validates`](Snapshot::validates).
pub struct Snapshot<S: Shadow> {
    pub(crate) shadow: S,
    pub(crate) steps: u64,
    pub(crate) heap: Heap<S::Tag>,
    pub(crate) frames: Vec<FrameImage<S::Tag>>,
    pub(crate) branches: Vec<BranchObs<S::CondTag>>,
    pub(crate) allocs: Vec<AllocRecord<S::Tag>>,
    pub(crate) warnings: Vec<String>,
    /// Sorted `(offset, byte)` log of every prefix input read.
    pub(crate) reads: Vec<(u64, u8)>,
    pub(crate) crcs: Vec<(u64, u64, u64, bool)>,
    pub(crate) inlen: Option<u64>,
}

impl<S: Shadow> std::fmt::Debug for Snapshot<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("steps", &self.steps)
            .field("frames", &self.frames.len())
            .field("reads", &self.reads.len())
            .field("crcs", &self.crcs.len())
            .finish_non_exhaustive()
    }
}

/// The byte an `in[off]` read observes: the input byte, or 0 past EOF.
fn byte_or_zero(input: &[u8], off: u64) -> u8 {
    if off < input.len() as u64 {
        input[off as usize]
    } else {
        0
    }
}

/// The `crc32_ok` intrinsic's semantics, shared between live evaluation
/// and snapshot validation.
#[must_use]
pub(crate) fn crc_check(input: &[u8], start: u64, len: u64, stored_off: u64) -> bool {
    let end = start.saturating_add(len);
    let input_len = input.len() as u64;
    if end > input_len || stored_off.saturating_add(4) > input_len {
        return false;
    }
    let data = &input[start as usize..end as usize];
    let stored = u32::from_be_bytes(
        input[stored_off as usize..stored_off as usize + 4]
            .try_into()
            .expect("4 bytes"),
    );
    diode_lang::checksum::crc32(data) == stored
}

impl<S: Shadow> Snapshot<S> {
    /// Statements executed in the captured prefix.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Distinct input offsets the prefix observed directly.
    #[must_use]
    pub fn reads_logged(&self) -> usize {
        self.reads.len()
    }

    /// Approximate bytes this snapshot keeps resident: the frozen
    /// heap's accounted payload bytes plus the validation log, frames,
    /// and recorded prefixes. A pinning estimate for cache gauges, not
    /// an allocator measurement — COW payloads shared with other
    /// snapshots are charged to each holder.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        let frames: u64 = self
            .frames
            .iter()
            .map(|f| 64 + 48 * (f.env.len() as u64) + 16 * (f.control.len() as u64))
            .sum();
        self.heap.current_bytes()
            + frames
            + 10 * self.reads.len() as u64
            + 33 * self.crcs.len() as u64
            + 24 * self.branches.len() as u64
            + 48 * self.allocs.len() as u64
            + self
                .warnings
                .iter()
                .map(|w| 24 + w.len() as u64)
                .sum::<u64>()
    }

    /// True when resuming on `input` is guaranteed byte-identical to a
    /// from-scratch run: every prefix input observation — byte reads,
    /// `inlen`, and `crc32_ok` outcomes — agrees with `input`.
    #[must_use]
    pub fn validates(&self, input: &[u8]) -> bool {
        if let Some(len) = self.inlen {
            if input.len() as u64 != len {
                return false;
            }
        }
        self.reads
            .iter()
            .all(|&(off, val)| byte_or_zero(input, off) == val)
            && self
                .crcs
                .iter()
                .all(|&(s, l, d, out)| crc_check(input, s, l, d) == out)
    }
}
