//! Shadow execution policies.
//!
//! The interpreter is parameterised by a [`Shadow`] policy that decides
//! what extra information is tracked alongside concrete values. The three
//! policies mirror DIODE's staged instrumentation (§1.3, §4.1–4.2):
//!
//! | Policy | Paper stage | Value tag | Condition tag |
//! |---|---|---|---|
//! | [`Concrete`] | plain re-execution (error detection, §4.6) | `()` | `()` |
//! | [`Taint`] | stage 1: fine-grained taint tracing | sorted input-byte label set | label set |
//! | [`Symbolic`] | stage 2: symbolic recording of relevant bytes | `Option<SymExpr>` | `Option<SymBool>` |
//!
//! Staging is what makes recording scale: the symbolic policy only builds
//! expressions for values influenced by the configured relevant bytes; all
//! other values stay purely concrete (`None`), exactly as the paper's
//! "Relevant Input Bytes" optimisation prescribes.

use std::collections::HashSet;
use std::sync::Arc;

use diode_lang::{BinOp, Bv, CastKind, CmpOp, UnOp};
use diode_symbolic::{SymBool, SymExpr};

/// A policy describing what shadow state accompanies each value.
///
/// This trait is sealed in spirit: it is implemented by [`Concrete`],
/// [`Taint`] and [`Symbolic`], and the interpreter drives it; downstream
/// crates normally just pick a policy.
pub trait Shadow {
    /// Tag carried by every value and memory cell.
    type Tag: Clone + Default;
    /// Tag carried by every recorded branch observation.
    type CondTag: Clone;

    /// Tag for one byte of program input (the taint source).
    fn input_byte(&mut self, offset: u32) -> Self::Tag;

    /// Tag for the result of a unary operation.
    fn un(&mut self, op: UnOp, operand: (&Self::Tag, Bv)) -> Self::Tag;

    /// Tag for the result of a binary operation.
    fn bin(&mut self, op: BinOp, lhs: (&Self::Tag, Bv), rhs: (&Self::Tag, Bv)) -> Self::Tag;

    /// Tag for the result of a width cast.
    fn cast(&mut self, kind: CastKind, width: u8, operand: (&Self::Tag, Bv)) -> Self::Tag;

    /// Condition tag for a comparison atom, given the concrete outcome.
    /// The returned tag must already be oriented: it describes the
    /// constraint "this atom evaluates to `outcome`".
    fn cmp(
        &mut self,
        op: CmpOp,
        lhs: (&Self::Tag, Bv),
        rhs: (&Self::Tag, Bv),
        outcome: bool,
    ) -> Self::CondTag;

    /// The trivial (untainted / always-true) condition tag.
    fn cond_true(&mut self) -> Self::CondTag;

    /// Conjunction of two condition tags (used to accumulate the
    /// evaluation trace of short-circuit `&&`/`||`).
    fn cond_and(&mut self, a: Self::CondTag, b: Self::CondTag) -> Self::CondTag;
}

// ---------------------------------------------------------------------------
// Concrete
// ---------------------------------------------------------------------------

/// No shadow state: plain concrete execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Concrete;

impl Shadow for Concrete {
    type Tag = ();
    type CondTag = ();

    fn input_byte(&mut self, _offset: u32) {}
    fn un(&mut self, _op: UnOp, _operand: (&(), Bv)) {}
    fn bin(&mut self, _op: BinOp, _lhs: (&(), Bv), _rhs: (&(), Bv)) {}
    fn cast(&mut self, _kind: CastKind, _width: u8, _operand: (&(), Bv)) {}
    fn cmp(&mut self, _op: CmpOp, _lhs: (&(), Bv), _rhs: (&(), Bv), _outcome: bool) {}
    fn cond_true(&mut self) {}
    fn cond_and(&mut self, _a: (), _b: ()) {}
}

// ---------------------------------------------------------------------------
// Taint
// ---------------------------------------------------------------------------

/// A sorted, deduplicated, structurally shared set of input-byte labels.
/// The empty set (the `Default`) means *untainted*.
#[derive(Debug, Clone, Default)]
pub struct LabelSet(Option<Arc<[u32]>>);

impl LabelSet {
    /// The untainted (empty) label set.
    #[must_use]
    pub fn empty() -> Self {
        LabelSet(None)
    }

    /// A singleton label set.
    #[must_use]
    pub fn singleton(label: u32) -> Self {
        LabelSet(Some(Arc::from(vec![label])))
    }

    /// True if no labels are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.as_ref().is_none_or(|s| s.is_empty())
    }

    /// The labels as a sorted slice.
    #[must_use]
    pub fn labels(&self) -> &[u32] {
        self.0.as_deref().unwrap_or(&[])
    }

    /// Set union (shares the non-empty side when possible).
    #[must_use]
    pub fn union(&self, other: &LabelSet) -> LabelSet {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let (a, b) = (self.labels(), other.labels());
        // Fast path: identical or contained ranges are common in loops.
        if a == b {
            return self.clone();
        }
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        LabelSet(Some(Arc::from(out)))
    }
}

/// Stage-1 policy: fine-grained dynamic taint analysis (§4.1). Each input
/// byte gets a unique label; arithmetic, data-movement and logic operations
/// propagate label-set unions.
#[derive(Debug, Clone, Copy, Default)]
pub struct Taint;

impl Shadow for Taint {
    type Tag = LabelSet;
    type CondTag = LabelSet;

    fn input_byte(&mut self, offset: u32) -> LabelSet {
        LabelSet::singleton(offset)
    }

    fn un(&mut self, _op: UnOp, operand: (&LabelSet, Bv)) -> LabelSet {
        operand.0.clone()
    }

    fn bin(&mut self, _op: BinOp, lhs: (&LabelSet, Bv), rhs: (&LabelSet, Bv)) -> LabelSet {
        lhs.0.union(rhs.0)
    }

    fn cast(&mut self, _kind: CastKind, _width: u8, operand: (&LabelSet, Bv)) -> LabelSet {
        operand.0.clone()
    }

    fn cmp(
        &mut self,
        _op: CmpOp,
        lhs: (&LabelSet, Bv),
        rhs: (&LabelSet, Bv),
        _outcome: bool,
    ) -> LabelSet {
        lhs.0.union(rhs.0)
    }

    fn cond_true(&mut self) -> LabelSet {
        LabelSet::empty()
    }

    fn cond_and(&mut self, a: LabelSet, b: LabelSet) -> LabelSet {
        a.union(&b)
    }
}

// ---------------------------------------------------------------------------
// Symbolic
// ---------------------------------------------------------------------------

/// Stage-2 policy: records symbolic expressions for values influenced by
/// the configured *relevant* input bytes (§4.2); everything else stays
/// concrete (`None`). With `relevant = None`, every input byte is symbolic.
#[derive(Debug, Clone, Default)]
pub struct Symbolic {
    relevant: Option<HashSet<u32>>,
}

impl Symbolic {
    /// Tracks all input bytes symbolically.
    #[must_use]
    pub fn all_bytes() -> Self {
        Symbolic { relevant: None }
    }

    /// Tracks only the given byte offsets symbolically — the staging
    /// optimisation that makes recording scale (§1.3).
    #[must_use]
    pub fn relevant_bytes<I: IntoIterator<Item = u32>>(bytes: I) -> Self {
        Symbolic {
            relevant: Some(bytes.into_iter().collect()),
        }
    }
}

/// Materialises a possibly-absent symbolic operand, embedding the concrete
/// value as a constant (the mixed concrete/symbolic rules of Figure 4).
fn materialize(tag: &Option<SymExpr>, concrete: Bv) -> SymExpr {
    match tag {
        Some(e) => e.clone(),
        None => SymExpr::constant(concrete),
    }
}

impl Shadow for Symbolic {
    type Tag = Option<SymExpr>;
    type CondTag = Option<SymBool>;

    fn input_byte(&mut self, offset: u32) -> Option<SymExpr> {
        match &self.relevant {
            Some(set) if !set.contains(&offset) => None,
            _ => Some(SymExpr::input_byte(offset)),
        }
    }

    fn un(&mut self, op: UnOp, operand: (&Option<SymExpr>, Bv)) -> Option<SymExpr> {
        operand.0.as_ref().map(|e| e.un(op))
    }

    fn bin(
        &mut self,
        op: BinOp,
        lhs: (&Option<SymExpr>, Bv),
        rhs: (&Option<SymExpr>, Bv),
    ) -> Option<SymExpr> {
        if lhs.0.is_none() && rhs.0.is_none() {
            return None;
        }
        Some(materialize(lhs.0, lhs.1).bin(op, materialize(rhs.0, rhs.1)))
    }

    fn cast(
        &mut self,
        kind: CastKind,
        width: u8,
        operand: (&Option<SymExpr>, Bv),
    ) -> Option<SymExpr> {
        operand.0.as_ref().map(|e| e.cast(kind, width))
    }

    fn cmp(
        &mut self,
        op: CmpOp,
        lhs: (&Option<SymExpr>, Bv),
        rhs: (&Option<SymExpr>, Bv),
        outcome: bool,
    ) -> Option<SymBool> {
        if lhs.0.is_none() && rhs.0.is_none() {
            return None;
        }
        let cond = SymBool::cmp(op, materialize(lhs.0, lhs.1), materialize(rhs.0, rhs.1));
        Some(if outcome { cond } else { cond.negate() })
    }

    fn cond_true(&mut self) -> Option<SymBool> {
        None
    }

    fn cond_and(&mut self, a: Option<SymBool>, b: Option<SymBool>) -> Option<SymBool> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => Some(a.and(&b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_set_union() {
        let a = LabelSet::singleton(3);
        let b = LabelSet::singleton(1);
        let u = a.union(&b);
        assert_eq!(u.labels(), &[1, 3]);
        assert_eq!(u.union(&a).labels(), &[1, 3]);
        assert!(LabelSet::empty().is_empty());
        assert_eq!(LabelSet::empty().union(&u).labels(), &[1, 3]);
    }

    #[test]
    fn taint_propagates_unions() {
        let mut t = Taint;
        let a = t.input_byte(0);
        let b = t.input_byte(5);
        let r = t.bin(BinOp::Add, (&a, Bv::u32(1)), (&b, Bv::u32(2)));
        assert_eq!(r.labels(), &[0, 5]);
        let c = t.cast(CastKind::Zext, 32, (&r, Bv::u32(3)));
        assert_eq!(c.labels(), &[0, 5]);
    }

    #[test]
    fn symbolic_mixes_concrete_operands_as_constants() {
        let mut s = Symbolic::all_bytes();
        let sym = s.input_byte(2);
        let tagless: Option<SymExpr> = None;
        let r = s
            .bin(BinOp::Add, (&sym, Bv::byte(9)), (&tagless, Bv::byte(1)))
            .expect("tainted result");
        assert_eq!(r.eval(&|_| 9).value(), 10);
        // Untainted op stays untainted.
        assert!(s
            .bin(BinOp::Add, (&tagless, Bv::byte(1)), (&tagless, Bv::byte(2)))
            .is_none());
    }

    #[test]
    fn symbolic_restricts_to_relevant_bytes() {
        let mut s = Symbolic::relevant_bytes([4, 5]);
        assert!(s.input_byte(4).is_some());
        assert!(s.input_byte(9).is_none());
    }

    #[test]
    fn cmp_orientation_matches_outcome() {
        let mut s = Symbolic::all_bytes();
        let x = s.input_byte(0);
        let c: Option<SymExpr> = None;
        let taken = s
            .cmp(CmpOp::Ult, (&x, Bv::byte(3)), (&c, Bv::byte(10)), true)
            .unwrap();
        assert!(taken.eval(&|_| 3));
        assert!(!taken.eval(&|_| 10));
        let not_taken = s
            .cmp(CmpOp::Ult, (&x, Bv::byte(30)), (&c, Bv::byte(10)), false)
            .unwrap();
        assert!(not_taken.eval(&|_| 30));
        assert!(!not_taken.eval(&|_| 3));
    }
}
