//! # diode-interp — concrete + shadow execution of core-language programs
//!
//! This crate is the instrumentation substrate of the DIODE reproduction:
//! it plays the role Valgrind plays in the paper (§4.1–4.2, §4.6). One
//! interpreter implements the operational semantics of Figures 4–6 and is
//! parameterised by a [`Shadow`] policy:
//!
//! * [`Concrete`] — plain execution with memcheck-style error detection;
//! * [`Taint`] — stage 1: byte-level taint labels identify target memory
//!   allocation sites and their relevant input bytes;
//! * [`Symbolic`] — stage 2: records symbolic target expressions and branch
//!   conditions for the relevant input bytes only.
//!
//! ```
//! use diode_interp::{run, MachineConfig, Outcome, Taint};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = diode_lang::parse(r#"
//!     fn main() {
//!         n = zext32(in[0]) << 8 | zext32(in[1]);
//!         buf = alloc("demo@3", n * 2);
//!     }
//! "#)?;
//! let run = run(&program, &[0x00, 0x20], Taint::default(), &MachineConfig::default());
//! assert_eq!(run.outcome, Outcome::Completed);
//! // Stage 1 found the target site and its relevant input bytes:
//! assert_eq!(run.allocs[0].size_tag.labels(), &[0, 1]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod heap;
mod machine;
mod shadow;
mod snapshot;
mod value;

pub use heap::{take_peak_heap_bytes, Cell, Fault, Heap, MemError, MemErrorKind};
pub use machine::{
    run, run_and_capture, run_capture_multi, run_from, run_from_with, run_probed, run_traced,
    AllocRecord, BranchObs, MachineConfig, Outcome, Run,
};
pub use shadow::{Concrete, LabelSet, Shadow, Symbolic, Taint};
pub use snapshot::Snapshot;
pub use value::{BlockId, Raw, Value};
