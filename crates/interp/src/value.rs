//! Runtime values: concrete machine value + sticky overflow flag + shadow
//! tag.
//!
//! Following Figure 4's semantics, every evaluation produces a pair of a
//! concrete value and a symbolic value; here the "symbolic half" is the
//! generic shadow tag `T` (nothing for plain concrete execution, a taint
//! label set for stage 1, a [`diode_symbolic::SymExpr`] for stage 2).
//!
//! In addition we thread a *sticky overflow flag* through every operation:
//! it is set when any arithmetic step that produced this value overflowed
//! its width. The flag at an allocation site's size argument is the
//! paper's "the computation of the target value overflows" — the ground
//! truth used by error detection (§4.6) to confirm a triggered overflow.

use std::fmt;

use diode_lang::Bv;

/// Identifier of a heap block; id 0 is the null pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The null pointer.
    pub const NULL: BlockId = BlockId(0);

    /// True if this is the null pointer.
    #[must_use]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// The concrete half of a runtime value: a machine integer or an address
/// (Figure 4's `Val = Int ∪ Addr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Raw {
    /// A width-typed machine integer.
    Int(Bv),
    /// A heap address (opaque: the core language has no pointer
    /// arithmetic; loads/stores take base + offset).
    Ptr(BlockId),
}

/// A tagged runtime value.
#[derive(Debug, Clone)]
pub struct Value<T> {
    /// Concrete machine value.
    pub raw: Raw,
    /// Sticky overflow flag: some operation in this value's history
    /// overflowed its width.
    pub ovf: bool,
    /// Shadow tag (taint labels / symbolic expression / nothing).
    pub tag: T,
}

impl<T: Default> Value<T> {
    /// An untainted integer value with a clean overflow history.
    #[must_use]
    pub fn int(bv: Bv) -> Self {
        Value {
            raw: Raw::Int(bv),
            ovf: false,
            tag: T::default(),
        }
    }

    /// An untainted pointer value.
    #[must_use]
    pub fn ptr(block: BlockId) -> Self {
        Value {
            raw: Raw::Ptr(block),
            ovf: false,
            tag: T::default(),
        }
    }
}

impl<T> Value<T> {
    /// The integer payload, if this value is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<Bv> {
        match self.raw {
            Raw::Int(bv) => Some(bv),
            Raw::Ptr(_) => None,
        }
    }

    /// The pointer payload, if this value is a pointer.
    #[must_use]
    pub fn as_ptr(&self) -> Option<BlockId> {
        match self.raw {
            Raw::Ptr(b) => Some(b),
            Raw::Int(_) => None,
        }
    }
}

impl<T> fmt::Display for Value<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.raw {
            Raw::Int(bv) => write!(f, "{bv}"),
            Raw::Ptr(BlockId(0)) => write!(f, "null"),
            Raw::Ptr(BlockId(b)) => write!(f, "&block{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v: Value<()> = Value::int(Bv::u32(7));
        assert_eq!(v.as_int(), Some(Bv::u32(7)));
        assert_eq!(v.as_ptr(), None);
        let p: Value<()> = Value::ptr(BlockId(3));
        assert_eq!(p.as_ptr(), Some(BlockId(3)));
        assert_eq!(p.as_int(), None);
        assert!(BlockId::NULL.is_null());
        assert!(!BlockId(3).is_null());
    }

    #[test]
    fn display() {
        let v: Value<()> = Value::int(Bv::u32(7));
        assert_eq!(v.to_string(), "7u32");
        let p: Value<()> = Value::ptr(BlockId::NULL);
        assert_eq!(p.to_string(), "null");
    }
}
