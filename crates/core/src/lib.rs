//! # diode-core — the DIODE engine
//!
//! The paper's primary contribution (§1.1, §3, §4): targeted automatic
//! integer-overflow discovery using goal-directed conditional branch
//! enforcement. Given a program, a seed input it processes correctly, and
//! a format description, DIODE
//!
//! 1. identifies **target memory allocation sites** whose size is
//!    influenced by the input (taint stage, [`identify_target_sites`]);
//! 2. extracts the **symbolic target expression** and the branch-condition
//!    sequence φ along the seed path ([`extract`]), compressing φ per
//!    Figure 8 ([`compress`]) and keeping only **relevant** conditions;
//! 3. derives the **target constraint** β = `overflow(B)` and solves it;
//! 4. when sanity checks reject the generated input, iteratively enforces
//!    the **first flipped branch** (Figure 7, [`enforce`]) until an input
//!    triggers the overflow or the constraint is unsatisfiable;
//! 5. detects triggered overflows through their effect on the computation
//!    — memcheck-style invalid accesses, segfaults, aborts (§4.6).
//!
//! ```
//! use diode_core::{analyze_program, DiodeConfig, SiteOutcome};
//! use diode_format::FormatDesc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = diode_lang::parse(r#"
//!     fn main() {
//!         n = zext32(in[0]) << 8 | zext32(in[1]);
//!         if n > 50000 { error("implausible"); }   // sanity check
//!         buf = alloc("demo@4", n * 100000);        // target site
//!         t = zext64(n) * 100000u64;
//!         p = 0u64;
//!         while p < 16u64 { buf[t * p / 16u64] = 0u8; p = p + 1u64; }
//!     }
//! "#)?;
//! let seed = vec![0x00, 0x08];
//! let analysis = analyze_program(
//!     &program, &seed, &FormatDesc::new("demo"), &DiodeConfig::default(),
//! );
//! let report = analysis.site("demo@4").expect("target site found");
//! let bug = match &report.outcome {
//!     SiteOutcome::Exposed(bug) => bug,
//!     other => panic!("expected exposed site, got {other:?}"),
//! };
//! // DIODE generated an input that passes the sanity check yet overflows:
//! let n = u32::from(bug.input[0]) << 8 | u32::from(bug.input[1]);
//! assert!(n <= 50000 && u64::from(n) * 100000 > u64::from(u32::MAX));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod enforce;
mod experiment;
mod phi;
mod pipeline;
mod report;
mod snapshot;
mod trace;

pub use enforce::{
    analyze_site, analyze_site_with_snapshots, enforce, full_path_constraint_satisfiable, Bug,
    DiodeConfig, PreventedReason, SiteOutcome, SiteReport, SiteSnapshotInfo,
};
pub use experiment::{analyze_program, success_rate, ProgramAnalysis, SuccessRate};
pub use phi::{compress, count_relevant_occurrences, relevant, CompressedCond};
pub use pipeline::{
    classify_error, classify_run, extract, generate_input, identify_target_sites,
    identify_target_sites_traced, test_candidate, CandidateResult, Extraction, TargetSite,
};
pub use report::BugReport;
pub use snapshot::{warm_unit_slots, SiteSlot, SnapshotCache, SnapshotStats};
pub use trace::{diff_paths, first_divergence, Divergence};
