//! The branch-condition sequence φ: compression and relevance filtering.
//!
//! φ is the sequence of symbolic branch conditions recorded along the seed
//! path (§3.2). Before enforcement, DIODE
//!
//! 1. **compresses** φ (Figure 8): all occurrences of the same conditional
//!    branch label are coalesced into a single constraint — the
//!    conjunction of the observed per-occurrence constraints — keeping the
//!    position of the label's *first* occurrence;
//! 2. keeps only **relevant** conditions (§3.3): those sharing at least
//!    one input byte with the target constraint β.

use diode_interp::BranchObs;
use diode_lang::Label;
use diode_symbolic::SymBool;

/// One compressed, oriented branch condition ⟨ℓ, B⟩.
#[derive(Debug, Clone)]
pub struct CompressedCond {
    /// Label of the conditional branch.
    pub label: Label,
    /// Conjunction of the constraints observed at every occurrence of the
    /// label, each already oriented to the direction the seed took.
    pub constraint: SymBool,
    /// Number of dynamic occurrences coalesced into this condition.
    pub occurrences: usize,
}

/// Figure 8: coalesces multiple occurrences of each conditional branch
/// into a single constraint, preserving first-occurrence order.
///
/// Untainted observations contribute `true` (no constraint); labels whose
/// every occurrence is untainted still appear (with a `true` constraint)
/// but are dropped by [`relevant`].
#[must_use]
pub fn compress(obs: &[BranchObs<Option<SymBool>>]) -> Vec<CompressedCond> {
    let mut order: Vec<Label> = Vec::new();
    let mut by_label: std::collections::HashMap<Label, CompressedCond> =
        std::collections::HashMap::new();
    for o in obs {
        let entry = by_label.entry(o.label).or_insert_with(|| {
            order.push(o.label);
            CompressedCond {
                label: o.label,
                constraint: SymBool::Const(true),
                occurrences: 0,
            }
        });
        entry.occurrences += 1;
        if let Some(c) = &o.constraint {
            entry.constraint = entry.constraint.and(c);
        }
    }
    order
        .into_iter()
        .map(|l| by_label.remove(&l).expect("label recorded"))
        .collect()
}

/// §3.3: keeps conditions that share an input byte with the target
/// constraint (whose sorted byte set is `beta_bytes`).
#[must_use]
pub fn relevant(conds: Vec<CompressedCond>, beta_bytes: &[u32]) -> Vec<CompressedCond> {
    conds
        .into_iter()
        .filter(|c| c.constraint.intersects_bytes(beta_bytes))
        .collect()
}

/// Counts the dynamic occurrences of relevant conditional branches in a
/// raw observation sequence — Table 2's "total relevant conditional
/// branches on the path" denominator.
#[must_use]
pub fn count_relevant_occurrences(obs: &[BranchObs<Option<SymBool>>], beta_bytes: &[u32]) -> usize {
    obs.iter()
        .filter(|o| {
            o.constraint
                .as_ref()
                .is_some_and(|c| c.intersects_bytes(beta_bytes))
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_lang::{Bv, CastKind, CmpOp};
    use diode_symbolic::SymExpr;

    fn byte32(off: u32) -> SymExpr {
        SymExpr::input_byte(off).cast(CastKind::Zext, 32)
    }

    fn obs(label: u32, taken: bool, c: Option<SymBool>) -> BranchObs<Option<SymBool>> {
        BranchObs {
            label: Label(label),
            taken,
            constraint: c,
        }
    }

    fn lt(off: u32, bound: u32) -> SymBool {
        SymBool::cmp(CmpOp::Ult, byte32(off), SymExpr::constant(Bv::u32(bound)))
    }

    #[test]
    fn compress_coalesces_loop_occurrences() {
        // A loop at label 7 evaluated 3 times, then a check at label 9.
        let seq = vec![
            obs(7, true, Some(lt(0, 10))),
            obs(7, true, Some(lt(0, 20))),
            obs(7, false, Some(lt(0, 30))),
            obs(9, true, Some(lt(1, 5))),
        ];
        let c = compress(&seq);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].label, Label(7));
        assert_eq!(c[0].occurrences, 3);
        assert_eq!(c[1].label, Label(9));
        // The compressed constraint is the conjunction of all three.
        assert!(c[0].constraint.eval(&|_| 5));
        assert!(!c[0].constraint.eval(&|_| 25)); // violates lt(0,10) and lt(0,20)
    }

    #[test]
    fn compress_preserves_first_occurrence_order() {
        let seq = vec![
            obs(9, true, Some(lt(1, 5))),
            obs(7, true, Some(lt(0, 10))),
            obs(9, false, Some(lt(1, 50))),
        ];
        let c = compress(&seq);
        assert_eq!(
            c.iter().map(|x| x.label).collect::<Vec<_>>(),
            vec![Label(9), Label(7)]
        );
        assert_eq!(c[0].occurrences, 2);
    }

    #[test]
    fn untainted_observations_yield_true_constraints() {
        let seq = vec![obs(3, true, None), obs(3, false, None)];
        let c = compress(&seq);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].constraint, SymBool::Const(true));
        // …and relevance filtering drops them.
        assert!(relevant(c, &[0, 1]).is_empty());
    }

    #[test]
    fn relevant_keeps_only_overlapping_conditions() {
        let seq = vec![
            obs(1, true, Some(lt(0, 10))),
            obs(2, true, Some(lt(5, 10))),
            obs(3, true, None),
        ];
        let kept = relevant(compress(&seq), &[5, 6]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].label, Label(2));
    }

    #[test]
    fn count_relevant_counts_occurrences_not_labels() {
        let seq = vec![
            obs(7, true, Some(lt(0, 10))),
            obs(7, true, Some(lt(0, 10))),
            obs(7, true, Some(lt(0, 10))),
            obs(8, true, Some(lt(9, 10))),
            obs(9, true, None),
        ];
        assert_eq!(count_relevant_occurrences(&seq, &[0]), 3);
        assert_eq!(count_relevant_occurrences(&seq, &[9]), 1);
        assert_eq!(count_relevant_occurrences(&seq, &[4]), 0);
    }
}
