//! Prefix-snapshot cache for the enforcement loop.
//!
//! Figure 7 re-executes every candidate input from `main`, yet the
//! execution prefix up to the first byte the solver may have changed is
//! identical on every iteration (and, for multi-site programs, covers the
//! processing of every earlier site). This module owns the cache that
//! turns those re-executions into resumed suffixes:
//!
//! * a [`SiteSlot`] is one site's snapshot state machine — *empty* →
//!   *probed* (the first candidate run located the first divergent read)
//!   → *ready* (the second candidate run captured the prefix snapshot en
//!   route) — plus the terminal *inert* state for sites whose candidate
//!   paths never read a divergent byte;
//! * a [`SnapshotCache`] maps `(unit, site label)` keys to slots and is
//!   shared across campaign workers behind an `Arc`, with the same
//!   discipline as the solver-query cache; its counters ([`hits`,
//!   `misses`, `resumes`](SnapshotStats)) surface in campaign reports.
//!
//! Correctness never depends on the cache: every resume revalidates the
//! snapshot's input-observation log against the candidate (see
//! `diode_interp::Snapshot::validates`), and a mismatch falls back to a
//! full run. Snapshot-on and snapshot-off runs are byte-identical by
//! contract.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use diode_format::{Fixup, FormatDesc};
use diode_interp::{run_capture_multi, MachineConfig, Snapshot, Symbolic};
use diode_lang::{Label, Program};

use crate::pipeline::TargetSite;

/// Aggregate snapshot-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Candidate tests that found a ready snapshot.
    pub hits: u64,
    /// Candidate tests that ran from scratch (no snapshot yet, an inert
    /// site, or a failed validation).
    pub misses: u64,
    /// Candidate tests actually resumed from a snapshot (hits whose
    /// validation passed). `hits - resumes` counts invalidations.
    pub resumes: u64,
    /// Prefix snapshots captured.
    pub captures: u64,
    /// Stage-2 extractions resumed from a prefix snapshot (the per-site
    /// symbolic seed run replayed only its suffix).
    pub extract_resumes: u64,
    /// Ready snapshots currently held.
    pub entries: u64,
    /// Approximate bytes pinned by ready snapshots (COW heap payloads,
    /// frames, validation logs).
    pub bytes: u64,
    /// High-water mark of `bytes` over the cache's lifetime.
    pub peak_bytes: u64,
}

impl SnapshotStats {
    /// Resumed fraction of all candidate executions.
    #[must_use]
    pub fn resume_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.resumes as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    resumes: AtomicU64,
    captures: AtomicU64,
    extract_resumes: AtomicU64,
    /// Bytes pinned by ready snapshots. Slots only ever *gain* a
    /// snapshot (Ready is terminal), so the gauge grows monotonically
    /// and current == peak until a future eviction policy subtracts.
    bytes: diode_obs::ByteGauge,
}

/// One site's snapshot state.
#[derive(Debug, Default)]
enum SlotState {
    /// No candidate has run yet.
    #[default]
    Empty,
    /// A probing run found the first divergent read at this step.
    Probed {
        /// Step count of the statement performing the read.
        step: u64,
    },
    /// A prefix snapshot is available.
    Ready {
        /// The probe step the snapshot was captured before.
        step: u64,
        /// The captured prefix.
        snapshot: Arc<Snapshot<Symbolic>>,
        /// The boundary is known to precede the first read of the
        /// site's *relevant* bytes (warm-up captures watch relevant ∪
        /// checksum bytes), so stage-2 extraction may resume from it.
        /// Tester-captured snapshots watch β ∪ φ bytes instead — a set
        /// that can exclude a relevant byte the symbolic expression
        /// simplified away — and are only safe for candidate resumes.
        extract_safe: bool,
    },
    /// The site's candidate runs never read a divergent byte; snapshots
    /// cannot help (every candidate behaves identically anyway).
    Inert,
}

/// What the candidate tester should do next, as decided by the slot.
pub(crate) enum TestPlan {
    /// Resume from the snapshot (falling back to a full run if the
    /// candidate fails validation).
    Resume(Arc<Snapshot<Symbolic>>),
    /// Full run, watching for the first divergent read.
    Probe,
    /// Full run, capturing the prefix snapshot before this step.
    Capture(u64),
    /// Full run; snapshots cannot help this site.
    Plain,
}

/// The per-site snapshot slot. Obtained from a shared [`SnapshotCache`]
/// (campaigns) or created locally per `analyze_site` call.
#[derive(Debug)]
pub struct SiteSlot {
    state: Mutex<SlotState>,
    counters: Arc<Counters>,
}

impl SiteSlot {
    /// A standalone slot with its own counters, for single-site analyses
    /// outside a campaign cache.
    #[must_use]
    pub fn local() -> SiteSlot {
        SiteSlot {
            state: Mutex::new(SlotState::Empty),
            counters: Arc::new(Counters::default()),
        }
    }

    fn with_counters(counters: Arc<Counters>) -> SiteSlot {
        SiteSlot {
            state: Mutex::new(SlotState::Empty),
            counters,
        }
    }

    /// The probe result recorded so far, for reports and persisted
    /// snapshot metadata.
    #[must_use]
    pub fn first_divergent_step(&self) -> Option<u64> {
        match &*self.state.lock().unwrap() {
            SlotState::Probed { step } | SlotState::Ready { step, .. } => Some(*step),
            SlotState::Empty | SlotState::Inert => None,
        }
    }

    /// Seeds the slot with a probe recorded by an earlier run (corpus
    /// replay), skipping the probing candidate. No-op unless empty.
    pub fn prime(&self, first_divergent_step: u64) {
        let mut state = self.state.lock().unwrap();
        if matches!(*state, SlotState::Empty) {
            *state = SlotState::Probed {
                step: first_divergent_step,
            };
        }
    }

    pub(crate) fn plan(&self) -> TestPlan {
        match &*self.state.lock().unwrap() {
            SlotState::Empty => TestPlan::Probe,
            SlotState::Probed { step } => TestPlan::Capture(*step),
            SlotState::Ready { snapshot, .. } => TestPlan::Resume(Arc::clone(snapshot)),
            SlotState::Inert => TestPlan::Plain,
        }
    }

    pub(crate) fn record_probe(&self, probe: Option<u64>) {
        let mut state = self.state.lock().unwrap();
        if matches!(*state, SlotState::Empty) {
            *state = match probe {
                Some(step) => SlotState::Probed { step },
                None => SlotState::Inert,
            };
        }
    }

    pub(crate) fn record_snapshot(
        &self,
        step: u64,
        snapshot: Snapshot<Symbolic>,
        extract_safe: bool,
    ) {
        self.counters.captures.fetch_add(1, Ordering::Relaxed);
        let mut state = self.state.lock().unwrap();
        if matches!(*state, SlotState::Probed { .. } | SlotState::Empty) {
            self.counters.bytes.add(snapshot.approx_bytes());
            *state = SlotState::Ready {
                step,
                snapshot: Arc::new(snapshot),
                extract_safe,
            };
        }
    }

    pub(crate) fn count_hit(&self, resumed: bool) {
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        if resumed {
            self.counters.resumes.fetch_add(1, Ordering::Relaxed);
        }
        // A failed validation (hit without resume) re-executes from
        // scratch but still counts as ONE candidate execution: hits and
        // misses partition the tests, so `hits + misses` is the run
        // count and `hits - resumes` the invalidations.
    }

    pub(crate) fn count_miss(&self) {
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_extract_resume(&self) {
        self.counters
            .extract_resumes
            .fetch_add(1, Ordering::Relaxed);
    }

    /// The ready prefix snapshot, only if its boundary is certified for
    /// stage-2 extraction resumes (see [`SlotState::Ready`]).
    #[must_use]
    pub(crate) fn extract_snapshot(&self) -> Option<Arc<Snapshot<Symbolic>>> {
        match &*self.state.lock().unwrap() {
            SlotState::Ready {
                snapshot,
                extract_safe: true,
                ..
            } => Some(Arc::clone(snapshot)),
            _ => None,
        }
    }

    fn is_ready(&self) -> bool {
        matches!(*self.state.lock().unwrap(), SlotState::Ready { .. })
    }

    /// This slot's counters as stats (entries counts this slot only).
    #[must_use]
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            resumes: self.counters.resumes.load(Ordering::Relaxed),
            captures: self.counters.captures.load(Ordering::Relaxed),
            extract_resumes: self.counters.extract_resumes.load(Ordering::Relaxed),
            entries: u64::from(self.is_ready()),
            bytes: self.counters.bytes.current(),
            peak_bytes: self.counters.bytes.peak(),
        }
    }
}

/// A thread-safe map from `(unit, site label)` to [`SiteSlot`]s, shared
/// across campaign workers behind an `Arc` (the same discipline as the
/// solver-query cache). The `unit` key is caller-chosen — campaigns use
/// `(app index << 32) | seed index` — so snapshots never leak between
/// workloads whose prefixes have nothing in common.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    slots: Mutex<HashMap<(u64, Label), Arc<SiteSlot>>>,
    counters: Arc<Counters>,
}

impl SnapshotCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> SnapshotCache {
        SnapshotCache::default()
    }

    /// The slot for one `(unit, site)` — created on first use; every slot
    /// shares the cache's counters.
    #[must_use]
    pub fn slot(&self, unit: u64, label: Label) -> Arc<SiteSlot> {
        let mut slots = self.slots.lock().unwrap();
        Arc::clone(
            slots
                .entry((unit, label))
                .or_insert_with(|| Arc::new(SiteSlot::with_counters(Arc::clone(&self.counters)))),
        )
    }

    /// Seeds a slot with a probe step recorded by an earlier run (corpus
    /// snapshot metadata), so the first candidate run captures instead of
    /// probing.
    pub fn prime(&self, unit: u64, label: Label, first_divergent_step: u64) {
        self.slot(unit, label).prime(first_divergent_step);
    }

    /// Aggregate counters plus the number of ready snapshots held.
    #[must_use]
    pub fn stats(&self) -> SnapshotStats {
        let entries = self
            .slots
            .lock()
            .unwrap()
            .values()
            .filter(|s| s.is_ready())
            .count() as u64;
        SnapshotStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            resumes: self.counters.resumes.load(Ordering::Relaxed),
            captures: self.counters.captures.load(Ordering::Relaxed),
            extract_resumes: self.counters.extract_resumes.load(Ordering::Relaxed),
            entries,
            bytes: self.counters.bytes.current(),
            peak_bytes: self.counters.bytes.peak(),
        }
    }
}

/// The input offsets whose first read marks a site's snapshot boundary
/// when warming from stage-1 data alone: the site's relevant bytes (a
/// superset of β's bytes) plus every checksum-fixup destination.
#[must_use]
pub(crate) fn warm_watch_bytes(target: &TargetSite, format: &FormatDesc) -> Vec<u32> {
    let mut set: std::collections::BTreeSet<u32> = target.relevant_bytes.iter().copied().collect();
    for fixup in format.fixups() {
        let Fixup::Crc32 { dest, .. } = fixup;
        set.extend(*dest..dest + 4);
    }
    set.into_iter().collect()
}

/// Warms every site slot of one `(program, seed)` unit in a single pass:
/// given the first-read trace of the identification run (see
/// `diode_interp::run_traced`), each site's snapshot boundary is the
/// earliest first-read among its watch bytes, and **one** capture run —
/// under the tag-free `Symbolic::relevant_bytes([])` policy, stopping at
/// the last boundary — produces every site's prefix snapshot. Stage-2
/// extraction then resumes each site's symbolic seed run from its
/// snapshot (with the site's own relevant-byte policy swapped in), and
/// every enforcement candidate resumes from the first input onward.
///
/// `slots` is parallel to `targets`. Sites whose watch bytes were never
/// read are marked inert.
pub fn warm_unit_slots(
    program: &Program,
    seed: &[u8],
    format: &FormatDesc,
    targets: &[TargetSite],
    machine: &MachineConfig,
    first_reads: &HashMap<u64, u64>,
    slots: &[Arc<SiteSlot>],
) {
    assert_eq!(targets.len(), slots.len(), "slots parallel to targets");
    let _span = diode_obs::span(diode_obs::Phase::Warm);
    let mut stops: Vec<(u64, usize)> = Vec::new();
    for (i, target) in targets.iter().enumerate() {
        let step = warm_watch_bytes(target, format)
            .iter()
            .filter_map(|&o| first_reads.get(&u64::from(o)).copied())
            .min();
        match step {
            Some(step) => stops.push((step, i)),
            None => slots[i].record_probe(None),
        }
    }
    if stops.is_empty() {
        return;
    }
    stops.sort_unstable();
    let steps: Vec<u64> = stops.iter().map(|&(s, _)| s).collect();
    let snapshots = run_capture_multi(program, seed, Symbolic::relevant_bytes([]), machine, &steps);
    for (&(step, i), snapshot) in stops.iter().zip(snapshots) {
        match snapshot {
            Some(s) => slots[i].record_snapshot(step, s, true),
            None => slots[i].record_probe(Some(step)),
        }
    }
}

#[allow(unused)]
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<SnapshotCache>();
    check::<SiteSlot>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_state_machine_progresses() {
        let slot = SiteSlot::local();
        assert!(matches!(slot.plan(), TestPlan::Probe));
        slot.record_probe(Some(42));
        assert_eq!(slot.first_divergent_step(), Some(42));
        assert!(matches!(slot.plan(), TestPlan::Capture(42)));
        slot.record_probe(Some(7)); // late probe does not regress
        assert!(matches!(slot.plan(), TestPlan::Capture(42)));
    }

    #[test]
    fn inert_sites_stay_plain() {
        let slot = SiteSlot::local();
        slot.record_probe(None);
        assert!(matches!(slot.plan(), TestPlan::Plain));
        assert_eq!(slot.first_divergent_step(), None);
    }

    #[test]
    fn cache_shares_counters_and_keys_by_unit_and_label() {
        let cache = SnapshotCache::new();
        let a = cache.slot(1, Label(3));
        let b = cache.slot(1, Label(3));
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.slot(2, Label(3));
        assert!(!Arc::ptr_eq(&a, &c));
        a.count_miss();
        c.count_hit(true);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.resumes, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn priming_skips_the_probe_state() {
        let cache = SnapshotCache::new();
        cache.prime(0, Label(9), 100);
        assert!(matches!(
            cache.slot(0, Label(9)).plan(),
            TestPlan::Capture(100)
        ));
    }
}
