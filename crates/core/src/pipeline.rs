//! The staged DIODE pipeline (Figure 1, §1.3, §4).
//!
//! * **Stage 1 — target site identification** (§4.1): run the program on
//!   the seed under taint tracing; every allocation whose size is
//!   influenced by input bytes is a target site, and its taint labels are
//!   the relevant input bytes.
//! * **Stage 2 — target & branch constraint extraction** (§4.2): re-run
//!   with symbolic recording restricted to the relevant bytes; collect the
//!   symbolic target expression at the site and the branch-condition
//!   sequence φ along the path to it.
//! * **Target constraint** (§4.3): β = `overflow(target expression)`.
//! * **Test input generation** (§4.4): patch solver models into the seed
//!   via the format layer's Peach-style reconstruction.
//! * **Error detection** (§4.6): run the candidate concretely; the input
//!   *triggers* the overflow iff the site executed with an overflowed size
//!   computation and a memory error / crash was observed.

use std::sync::Arc;
use std::time::{Duration, Instant};

use diode_format::FormatDesc;
use diode_interp::{run, BranchObs, Concrete, MachineConfig, Outcome, Symbolic, Taint};
use diode_lang::{Bv, Label, Program};
use diode_solver::Model;
use diode_symbolic::{overflow_condition, SymBool, SymExpr};

use crate::phi::{compress, count_relevant_occurrences, relevant, CompressedCond};

/// A target memory allocation site identified by stage 1.
#[derive(Debug, Clone)]
pub struct TargetSite {
    /// Label of the allocation statement.
    pub label: Label,
    /// Site name (`file@line`).
    pub site: Arc<str>,
    /// Sorted input-byte offsets influencing the target value.
    pub relevant_bytes: Vec<u32>,
    /// The target value observed on the seed.
    pub seed_size: Bv,
}

/// Stage 1: identifies all target sites exercised by the seed.
///
/// Sites executed several times are reported once (first execution), as in
/// the paper's per-site analysis.
#[must_use]
pub fn identify_target_sites(
    program: &Program,
    seed: &[u8],
    machine: &MachineConfig,
) -> Vec<TargetSite> {
    identify_target_sites_traced(program, seed, machine).0
}

/// [`identify_target_sites`] plus the first-read trace of the taint run
/// (input offset → step of its first direct read). The trace is what the
/// per-unit snapshot warm-up (`warm_unit_slots`) needs to place every
/// site's prefix snapshot without a second probing pass.
#[must_use]
pub fn identify_target_sites_traced(
    program: &Program,
    seed: &[u8],
    machine: &MachineConfig,
) -> (Vec<TargetSite>, std::collections::HashMap<u64, u64>) {
    let mut cfg = machine.clone();
    cfg.record_branches = false;
    let (r, trace) = diode_interp::run_traced(program, seed, Taint, &cfg);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for a in &r.allocs {
        if !seen.insert(a.label) {
            continue;
        }
        if a.size_tag.is_empty() {
            continue; // not influenced by the input: not a target site
        }
        out.push(TargetSite {
            label: a.label,
            site: a.site.clone(),
            relevant_bytes: a.size_tag.labels().to_vec(),
            seed_size: a.size,
        });
    }
    (out, trace)
}

/// Stages 2–3: everything extracted for one target site.
#[derive(Debug)]
pub struct Extraction {
    /// The symbolic target expression B.
    pub target_expr: SymExpr,
    /// The target constraint β = overflow(B).
    pub beta: SymBool,
    /// Sorted input bytes appearing in β.
    pub beta_bytes: Vec<u32>,
    /// Compressed, relevant branch conditions along the seed path to the
    /// site (Figure 8 + §3.3), in first-occurrence order.
    pub phi: Vec<CompressedCond>,
    /// Table 2's denominator: dynamic occurrences of relevant conditional
    /// branches on the seed path to the site.
    pub total_relevant: usize,
    /// Wall-clock time spent in the instrumented runs and φ processing.
    pub extraction_time: Duration,
}

/// Stage 2+3: extracts the target expression, β, and φ for `site`.
///
/// Returns `None` if the site is not reached on the seed or records no
/// symbolic size (should not happen for stage-1 sites).
#[must_use]
pub fn extract(
    program: &Program,
    seed: &[u8],
    site: &TargetSite,
    machine: &MachineConfig,
) -> Option<Extraction> {
    let start = Instant::now();
    let shadow = Symbolic::relevant_bytes(site.relevant_bytes.iter().copied());
    let r = run(program, seed, shadow, machine);
    extraction_from_run(&r, site, start, false)
}

/// [`extract`] resuming the site's symbolic seed run from a prefix
/// snapshot instead of re-executing from `main`. The snapshot must have
/// been captured under `Symbolic::relevant_bytes([])` at a boundary
/// *before* the first read of any of the site's relevant bytes (the
/// warm-up guarantees this): up to there the tag-free and site-specific
/// policies record identically (everything `None`), so swapping the
/// shadow at resume reproduces the from-scratch extraction byte for
/// byte. Falls back to `None` only if the snapshot fails validation —
/// impossible for the seed it was captured from — or the site records no
/// symbolic size.
#[must_use]
pub(crate) fn extract_resumed(
    program: &Program,
    seed: &[u8],
    site: &TargetSite,
    machine: &MachineConfig,
    snapshot: &diode_interp::Snapshot<Symbolic>,
) -> Option<Extraction> {
    let start = Instant::now();
    let shadow = Symbolic::relevant_bytes(site.relevant_bytes.iter().copied());
    let r = diode_interp::run_from_with(program, seed, snapshot, shadow, machine)?;
    extraction_from_run(&r, site, start, true)
}

/// Shared stage-2/3 post-processing: target expression, β, compressed
/// relevant φ.
fn extraction_from_run(
    r: &diode_interp::Run<Option<SymExpr>, Option<SymBool>>,
    site: &TargetSite,
    start: Instant,
    resumed: bool,
) -> Option<Extraction> {
    let rec = r.allocs.iter().find(|a| a.label == site.label)?;
    let target_expr = rec.size_tag.clone()?;
    let beta = overflow_condition(&target_expr);
    let beta_bytes = beta.input_bytes();
    let path: &[BranchObs<Option<SymBool>>] = &r.branches[..rec.branches_before];
    let total_relevant = count_relevant_occurrences(path, &beta_bytes);
    let phi = relevant(compress(path), &beta_bytes);
    if diode_obs::audit_active() {
        diode_obs::audit_event(diode_obs::ProvenanceEvent::Extraction {
            relevant_bytes: beta_bytes.clone(),
            total_relevant: total_relevant as u32,
            phi_len: phi.len() as u32,
            boundary: rec.branches_before as u32,
            resumed,
        });
    }
    Some(Extraction {
        target_expr,
        beta,
        beta_bytes,
        phi,
        total_relevant,
        extraction_time: start.elapsed(),
    })
}

/// Generates a candidate input file from a solver model (§4.4): patch the
/// model's bytes into the seed, then repair checksums.
#[must_use]
pub fn generate_input(format: &FormatDesc, seed: &[u8], model: &Model) -> Vec<u8> {
    format.reconstruct(seed, model.bytes().iter().map(|(&o, &v)| (o, v)))
}

/// The result of running one candidate input (§4.6 error detection).
#[derive(Debug, Clone)]
pub struct CandidateResult {
    /// The overflow was triggered: the target site executed with an
    /// overflowed size computation AND an error was detected.
    pub triggered: bool,
    /// The site executed at all.
    pub site_executed: bool,
    /// Human-readable error classification (Table 2's Error Type column),
    /// e.g. `SIGSEGV/InvalidRead`.
    pub error_type: Option<String>,
    /// Final outcome of the run.
    pub outcome: Outcome,
}

/// Runs a candidate input and decides whether it triggers the overflow at
/// `label`.
///
/// Error detection follows §4.6: the overflow is observed indirectly via
/// memcheck-style invalid reads/writes, segfaults, or aborts. The seed
/// runs of every benchmark are error-free (asserted by the test suites),
/// so no further filtering is needed.
#[must_use]
pub fn test_candidate(
    program: &Program,
    input: &[u8],
    label: Label,
    machine: &MachineConfig,
) -> CandidateResult {
    let mut cfg = machine.clone();
    cfg.record_branches = false;
    classify_run(&run(program, input, Concrete, &cfg), label)
}

/// Classifies an already-executed run against `label` — the §4.6
/// decision shared by [`test_candidate`] and the snapshot-resumed
/// candidate path (which obtains its `Run` via `diode_interp::run_from`
/// under whatever shadow policy the snapshot carries; the decision only
/// reads shadow-independent facts).
#[must_use]
pub fn classify_run<T, C>(r: &diode_interp::Run<T, C>, label: Label) -> CandidateResult {
    let site_executed = r.allocs_at(label).next().is_some();
    let overflowed = r.overflowed_at(label);
    let error_type = classify_error(&r.outcome, &r.mem_errors);
    let triggered = site_executed && overflowed && error_type.is_some();
    CandidateResult {
        triggered,
        site_executed,
        error_type,
        outcome: r.outcome.clone(),
    }
}

/// Builds Table 2's Error Type string from an outcome + memcheck reports.
#[must_use]
pub fn classify_error(outcome: &Outcome, mem_errors: &[diode_interp::MemError]) -> Option<String> {
    use diode_interp::MemErrorKind;
    let mut kinds: Vec<&str> = Vec::new();
    let mut push = |k: &'static str| {
        if !kinds.contains(&k) {
            kinds.push(k);
        }
    };
    for e in mem_errors {
        match e.kind {
            MemErrorKind::InvalidRead | MemErrorKind::UseAfterFreeRead => push("InvalidRead"),
            MemErrorKind::InvalidWrite | MemErrorKind::UseAfterFreeWrite => push("InvalidWrite"),
            MemErrorKind::DoubleFree => push("DoubleFree"),
        }
    }
    let access = match kinds.as_slice() {
        [] => None,
        [one] => Some((*one).to_string()),
        ["InvalidRead", "InvalidWrite"] | ["InvalidWrite", "InvalidRead"] => {
            Some("InvalidRead/Write".to_string())
        }
        many => Some(many.join("/")),
    };
    match outcome {
        Outcome::Segfault(_) => Some(match access {
            Some(a) => format!("SIGSEGV/{a}"),
            None => "SIGSEGV".to_string(),
        }),
        Outcome::Aborted(_) => Some(match access {
            Some(a) => format!("SIGABRT/{a}"),
            None => "SIGABRT".to_string(),
        }),
        _ => access,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_lang::parse;

    const DEMO: &str = r#"
        fn main() {
            n = zext32(in[0]) << 8 | zext32(in[1]);
            if n > 60000 { error("too big"); }
            buf = alloc("demo@4", n * 80000);
            fixed = alloc("fixed@5", 64);
            t = zext64(n) * 80000u64;
            p = 0u64;
            while p < 16u64 {
                buf[t * p / 16u64] = 0u8;
                p = p + 1u64;
            }
        }
    "#;

    fn setup() -> (Program, Vec<u8>) {
        (parse(DEMO).unwrap(), vec![0x00, 0x10, 0xaa])
    }

    #[test]
    fn stage1_identifies_only_input_influenced_sites() {
        let (p, seed) = setup();
        let sites = identify_target_sites(&p, &seed, &MachineConfig::default());
        assert_eq!(sites.len(), 1, "fixed-size alloc must not be a target");
        assert_eq!(&*sites[0].site, "demo@4");
        assert_eq!(sites[0].relevant_bytes, vec![0, 1]);
        assert_eq!(sites[0].seed_size.value(), 16 * 80000);
    }

    #[test]
    fn stage2_extracts_expression_beta_and_phi() {
        let (p, seed) = setup();
        let machine = MachineConfig::default();
        let sites = identify_target_sites(&p, &seed, &machine);
        let ex = extract(&p, &seed, &sites[0], &machine).unwrap();
        // The expression reproduces the seed value and β is satisfiable
        // semantics-wise: n = 60000 (passes the check) overflows n*80000.
        let seed2 = seed.clone();
        let lookup = move |o: u32| seed2.get(o as usize).copied().unwrap_or(0);
        assert_eq!(ex.target_expr.eval(&lookup).value(), 16 * 80000);
        assert!(ex.beta.eval(&|_| 0xea)); // n = 0xEAEA → huge product
        assert_eq!(ex.beta_bytes, vec![0, 1]);
        // φ contains the sanity check (n > 60000 not taken).
        assert_eq!(ex.phi.len(), 1);
        assert!(ex.phi[0].constraint.eval(&lookup));
        assert!(!ex.phi[0].constraint.eval(&|_| 0xff));
        assert_eq!(ex.total_relevant, 1);
    }

    #[test]
    fn candidate_testing_detects_triggering_inputs() {
        let (p, seed) = setup();
        let machine = MachineConfig::default();
        let sites = identify_target_sites(&p, &seed, &machine);
        // n = 0xEA60 = 60000: passes the check; 60000*80000 = 4.8e9 ≥ 2^32.
        let input = vec![0xEA, 0x60, 0xaa];
        let res = test_candidate(&p, &input, sites[0].label, &machine);
        assert!(res.site_executed);
        assert!(res.triggered, "outcome {:?}", res.outcome);
        assert!(res.error_type.is_some());
        // n = 16 (the seed) must not trigger.
        let res = test_candidate(&p, &seed, sites[0].label, &machine);
        assert!(!res.triggered);
        // n = 0xFFFF fails the sanity check: site not executed.
        let res = test_candidate(&p, &[0xff, 0xff, 0], sites[0].label, &machine);
        assert!(!res.site_executed);
        assert!(!res.triggered);
    }

    #[test]
    fn error_classification_strings() {
        use diode_interp::{Fault, MemError, MemErrorKind};
        let me = |kind| MemError {
            kind,
            site: "s@1".into(),
            offset: 10,
            block_size: 4,
            at: Label(0),
        };
        assert_eq!(
            classify_error(&Outcome::Segfault(Fault::NullDeref { at: Label(0) }), &[]),
            Some("SIGSEGV".into())
        );
        assert_eq!(
            classify_error(
                &Outcome::Segfault(Fault::NullDeref { at: Label(0) }),
                &[me(MemErrorKind::InvalidRead)]
            ),
            Some("SIGSEGV/InvalidRead".into())
        );
        assert_eq!(
            classify_error(&Outcome::Completed, &[me(MemErrorKind::InvalidWrite)]),
            Some("InvalidWrite".into())
        );
        assert_eq!(
            classify_error(
                &Outcome::Completed,
                &[
                    me(MemErrorKind::InvalidRead),
                    me(MemErrorKind::InvalidWrite)
                ]
            ),
            Some("InvalidRead/Write".into())
        );
        assert_eq!(
            classify_error(&Outcome::Aborted("oom".into()), &[]),
            Some("SIGABRT".into())
        );
        assert_eq!(classify_error(&Outcome::Completed, &[]), None);
        assert_eq!(
            classify_error(&Outcome::InputRejected("bad".into()), &[]),
            None
        );
    }
}
