//! Evaluation drivers: whole-program analysis and the success-rate
//! experiments behind Tables 1 and 2 (§5).

use std::time::{Duration, Instant};

use diode_format::FormatDesc;
use diode_lang::Program;
use diode_solver::{enumerate, sample, SolverConfig};
use diode_symbolic::SymBool;

use crate::enforce::{analyze_site, DiodeConfig, SiteOutcome, SiteReport};
use crate::pipeline::{generate_input, identify_target_sites, test_candidate};

/// Analysis of one application: every target site, classified.
#[derive(Debug)]
pub struct ProgramAnalysis {
    /// Stage-1 + per-site extraction and discovery wall-clock time.
    pub analysis_time: Duration,
    /// Per-site reports, in site-label order.
    pub sites: Vec<SiteReport>,
}

impl ProgramAnalysis {
    /// Table 1 counts: (total, exposed, unsat, prevented).
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut exposed = 0;
        let mut unsat = 0;
        let mut prevented = 0;
        for s in &self.sites {
            match s.outcome {
                SiteOutcome::Exposed(_) => exposed += 1,
                SiteOutcome::TargetUnsat => unsat += 1,
                SiteOutcome::Prevented(_) => prevented += 1,
                SiteOutcome::Unknown => {}
            }
        }
        (self.sites.len(), exposed, unsat, prevented)
    }

    /// Report for a named site.
    #[must_use]
    pub fn site(&self, name: &str) -> Option<&SiteReport> {
        self.sites.iter().find(|s| s.site == name)
    }
}

/// Runs the full DIODE pipeline over every target site of a program.
#[must_use]
pub fn analyze_program(
    program: &Program,
    seed: &[u8],
    format: &FormatDesc,
    config: &DiodeConfig,
) -> ProgramAnalysis {
    let start = Instant::now();
    let targets = identify_target_sites(program, seed, &config.machine);
    let sites = targets
        .iter()
        .map(|t| analyze_site(program, seed, format, t, config))
        .collect();
    ProgramAnalysis {
        analysis_time: start.elapsed(),
        sites,
    }
}

/// Result of a success-rate experiment (Table 2 columns 7–8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuccessRate {
    /// Inputs that triggered the overflow.
    pub hits: u32,
    /// Inputs generated.
    pub samples: u32,
    /// True when the solution space was exhaustively enumerated (the
    /// paper's `2/2` entry for CVE-2008-2430).
    pub exhaustive: bool,
}

impl std::fmt::Display for SuccessRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.hits, self.samples)
    }
}

/// Generates up to `n` inputs satisfying `constraint` and counts how many
/// trigger the overflow at the site (§5.5/§5.6 protocol).
///
/// When the constraint has fewer than `n` solutions over its input bytes,
/// the experiment enumerates them exhaustively instead of sampling —
/// reproducing the paper's `2/2` row for the `x + 2` target expression.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn success_rate(
    program: &Program,
    seed: &[u8],
    format: &FormatDesc,
    site_label: diode_lang::Label,
    constraint: &SymBool,
    n: u32,
    rng_seed: u64,
    config: &DiodeConfig,
) -> SuccessRate {
    let solver: &SolverConfig = &config.solver;
    // Try exhaustive enumeration first with a small budget.
    let small_limit = 32usize.min(n as usize);
    let e = enumerate(constraint, small_limit, solver);
    let (models, exhaustive) = if e.complete && e.models.len() < n as usize {
        (e.models, true)
    } else {
        (sample(constraint, n as usize, rng_seed, solver), false)
    };
    let mut hits = 0;
    let samples = models.len() as u32;
    for m in &models {
        let input = generate_input(format, seed, m);
        if test_candidate(program, &input, site_label, &config.machine).triggered {
            hits += 1;
        }
    }
    SuccessRate {
        hits,
        samples,
        exhaustive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_lang::parse;

    /// A miniature two-site program: one exposed site behind one sanity
    /// check, one site whose constraint is unsatisfiable.
    const DEMO: &str = r#"
        fn main() {
            n = zext32(in[0]) << 8 | zext32(in[1]);
            small = in[2];
            tiny = alloc("tiny@3", zext32(small) * 2 + 8);
            if tiny == 0 { error("oom"); }
            if n > 60000 { error("bad n"); }
            buf = alloc("big@6", n * 80000);
            t = zext64(n) * 80000u64;
            p = 0u64;
            while p < 16u64 {
                buf[t * p / 16u64] = 0u8;
                p = p + 1u64;
            }
        }
    "#;

    #[test]
    fn analyze_program_classifies_both_sites() {
        let program = parse(DEMO).unwrap();
        let seed = vec![0x00, 0x10, 0x05];
        let format = FormatDesc::new("demo");
        let config = DiodeConfig::default();
        let analysis = analyze_program(&program, &seed, &format, &config);
        assert_eq!(analysis.counts(), (2, 1, 1, 0));
        let tiny = analysis.site("tiny@3").unwrap();
        assert!(matches!(tiny.outcome, SiteOutcome::TargetUnsat));
        let big = analysis.site("big@6").unwrap();
        let bug = big.outcome.bug().expect("exposed");
        // Triggering requires passing the n ≤ 60000 check: at most one
        // enforcement step.
        assert!(bug.enforced <= 1, "enforced {}", bug.enforced);
        // The triggering input really does satisfy the check and overflow.
        let n = u32::from(bug.input[0]) << 8 | u32::from(bug.input[1]);
        assert!(n <= 60000);
        assert!(u64::from(n) * 80000 > u64::from(u32::MAX));
    }

    #[test]
    fn success_rates_reflect_check_difficulty() {
        let program = parse(DEMO).unwrap();
        let seed = vec![0x00, 0x10, 0x05];
        let format = FormatDesc::new("demo");
        let config = DiodeConfig::default();
        let analysis = analyze_program(&program, &seed, &format, &config);
        let big = analysis.site("big@6").unwrap();
        let ex = big.extraction.as_ref().unwrap();
        // Target-only: solutions have n in [53688, 65535]; the n ≤ 60000
        // check passes for roughly half of that range.
        let rate = success_rate(
            &program, &seed, &format, big.label, &ex.beta, 24, 7, &config,
        );
        assert_eq!(rate.samples, 24);
        assert!(!rate.exhaustive);
        // With the enforced constraint every sample triggers.
        let bug = big.outcome.bug().unwrap();
        let rate2 = success_rate(
            &program,
            &seed,
            &format,
            big.label,
            &bug.constraint,
            24,
            7,
            &config,
        );
        assert!(rate2.hits >= rate.hits);
        if bug.enforced > 0 {
            // With the sanity check enforced, every sample triggers.
            assert_eq!(rate2.hits, rate2.samples, "{rate2}");
        } else {
            // The very first β-solution already triggered, so the bug's
            // constraint is β itself; the rate simply matches target-only.
            assert_eq!(rate2.hits, rate.hits);
        }
    }

    #[test]
    fn exhaustive_enumeration_for_tiny_solution_spaces() {
        // x + 4 over a 16-bit field: exactly 4 overflowing values... at
        // width 32 a 16-bit value cannot overflow; use a full 32-bit field.
        let src = r#"
            fn main() {
                x = zext32(in[0]) << 24 | zext32(in[1]) << 16
                  | zext32(in[2]) << 8 | zext32(in[3]);
                b = alloc("plus4@2", x + 4);
                k = 0;
                while k < 8 { b[zext64(k)] = 0u8; k = k + 1; }
            }
        "#;
        let program = parse(src).unwrap();
        let seed = vec![0, 0, 0, 16];
        let format = FormatDesc::new("demo");
        let config = DiodeConfig::default();
        let analysis = analyze_program(&program, &seed, &format, &config);
        let site = analysis.site("plus4@2").unwrap();
        let ex = site.extraction.as_ref().unwrap();
        let rate = success_rate(
            &program, &seed, &format, site.label, &ex.beta, 200, 3, &config,
        );
        assert!(rate.exhaustive);
        assert_eq!(rate.samples, 4, "x+4 has exactly 4 overflowing values");
        assert_eq!(rate.hits, 4, "all of them wrap to tiny allocations");
    }
}
