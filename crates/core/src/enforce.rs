//! Goal-directed conditional branch enforcement (Figure 7, §3.3).
//!
//! Given a target site, the algorithm:
//!
//! 1. solves the target constraint β alone; if the generated input
//!    triggers the overflow, done (this is how 9 of the paper's 14
//!    overflows are found — "without enforcing any conditional branches");
//! 2. otherwise repeatedly finds the **first** (in program execution
//!    order) relevant compressed seed-path condition the previous
//!    candidate violates — the *first flipped branch* — conjoins it onto
//!    the constraint, re-solves, and re-tests;
//! 3. stops when an input triggers (site *exposed*), the constraint
//!    becomes unsatisfiable, or the candidate satisfies all of φ without
//!    triggering (sanity checks *prevent* the overflow).

use std::sync::Arc;
use std::time::{Duration, Instant};

use diode_format::FormatDesc;
use diode_interp::MachineConfig;
use diode_lang::{Label, Program};
use diode_solver::{solve_with, SolveResult, SolverCache, SolverConfig};
use diode_symbolic::SymBool;

use crate::pipeline::{extract, generate_input, test_candidate, Extraction, TargetSite};

/// Why the enforcement loop concluded that no overflow-triggering input
/// exists (within budget).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreventedReason {
    /// φ' ∧ β became unsatisfiable after enforcing some branches.
    ConstraintUnsat {
        /// Branches enforced before unsatisfiability.
        enforced: usize,
    },
    /// The candidate satisfied every relevant compressed condition yet did
    /// not trigger the overflow (Figure 7 line 11).
    SatisfiesPhi {
        /// Branches enforced before the loop exited.
        enforced: usize,
    },
    /// Budget (enforcement count or solver) exhausted.
    Budget,
}

/// Outcome of analysing one target site.
#[derive(Debug, Clone)]
pub enum SiteOutcome {
    /// An overflow-triggering input was generated.
    Exposed(Bug),
    /// β itself is unsatisfiable — no input can overflow the observed
    /// target expression.
    TargetUnsat,
    /// Sanity checks prevent the overflow.
    Prevented(PreventedReason),
    /// The solver gave up (should not happen on the benchmarks).
    Unknown,
}

impl SiteOutcome {
    /// The generated bug, if the site was exposed.
    #[must_use]
    pub fn bug(&self) -> Option<&Bug> {
        match self {
            SiteOutcome::Exposed(b) => Some(b),
            _ => None,
        }
    }
}

/// A generated overflow-triggering input and its metadata (one Table 2
/// row).
#[derive(Debug, Clone)]
pub struct Bug {
    /// The triggering input file.
    pub input: Vec<u8>,
    /// Number of conditional branches enforced before triggering.
    pub enforced: usize,
    /// Labels of the enforced branches, in enforcement order.
    pub enforced_labels: Vec<Label>,
    /// Error classification observed on the triggering run.
    pub error_type: String,
    /// The final solved constraint (φ' ∧ β) — the query behind Table 2's
    /// "Target + Enforced Success Rate" experiment (§5.6).
    pub constraint: SymBool,
}

/// A full per-site analysis report.
#[derive(Debug)]
pub struct SiteReport {
    /// Site name.
    pub site: String,
    /// Site label.
    pub label: Label,
    /// Relevant input bytes (stage 1).
    pub relevant_bytes: Vec<u32>,
    /// Outcome (exposed / unsat / prevented).
    pub outcome: SiteOutcome,
    /// Total dynamic occurrences of relevant branches on the seed path
    /// (Table 2's denominator).
    pub total_relevant: usize,
    /// Number of distinct relevant compressed conditions in φ.
    pub phi_len: usize,
    /// Wall-clock discovery time for this site (extraction excluded).
    pub discovery_time: Duration,
    /// The extraction (target expression, β, φ), for further experiments.
    pub extraction: Option<Extraction>,
}

/// Tunables for the site analysis.
#[derive(Debug, Clone)]
pub struct DiodeConfig {
    /// Interpreter limits.
    pub machine: MachineConfig,
    /// Solver limits.
    pub solver: SolverConfig,
    /// Safety bound on enforcement iterations (the paper's sites need at
    /// most 5; the bound only guards against pathological programs).
    pub max_enforcements: usize,
    /// Optional shared solver-query cache. When set, every deterministic
    /// (diversity-free) constraint query in the enforcement loop is
    /// memoized through it; `diode-engine` campaigns install one cache
    /// across all workers so repeated φ′∧β queries are answered without
    /// re-blasting. `None` keeps the original solve-from-scratch path.
    pub query_cache: Option<Arc<SolverCache>>,
}

impl Default for DiodeConfig {
    fn default() -> Self {
        DiodeConfig {
            machine: MachineConfig::default(),
            solver: SolverConfig::default(),
            max_enforcements: 32,
            query_cache: None,
        }
    }
}

impl DiodeConfig {
    /// This configuration with `cache` installed as the query cache.
    #[must_use]
    pub fn with_query_cache(mut self, cache: Arc<SolverCache>) -> Self {
        self.query_cache = Some(cache);
        self
    }

    /// Solves a deterministic constraint query, through the shared cache
    /// when one is installed.
    #[must_use]
    pub fn solve_query(&self, cond: &SymBool) -> SolveResult {
        match &self.query_cache {
            Some(cache) => cache.solve(cond, &self.solver),
            None => solve_with(cond, &self.solver, None).0,
        }
    }
}

/// Runs the complete DIODE analysis for one target site (Figure 7).
#[must_use]
pub fn analyze_site(
    program: &Program,
    seed: &[u8],
    format: &FormatDesc,
    site: &TargetSite,
    config: &DiodeConfig,
) -> SiteReport {
    let Some(extraction) = extract(program, seed, site, &config.machine) else {
        return SiteReport {
            site: site.site.to_string(),
            label: site.label,
            relevant_bytes: site.relevant_bytes.clone(),
            outcome: SiteOutcome::Unknown,
            total_relevant: 0,
            phi_len: 0,
            discovery_time: Duration::ZERO,
            extraction: None,
        };
    };
    let start = Instant::now();
    let outcome = enforce(program, seed, format, site.label, &extraction, config);
    SiteReport {
        site: site.site.to_string(),
        label: site.label,
        relevant_bytes: site.relevant_bytes.clone(),
        outcome,
        total_relevant: extraction.total_relevant,
        phi_len: extraction.phi.len(),
        discovery_time: start.elapsed(),
        extraction: Some(extraction),
    }
}

/// The Figure 7 loop, operating on an existing extraction.
#[must_use]
pub fn enforce(
    program: &Program,
    seed: &[u8],
    format: &FormatDesc,
    label: Label,
    extraction: &Extraction,
    config: &DiodeConfig,
) -> SiteOutcome {
    // Line 2–3: solve β alone.
    let first = config.solve_query(&extraction.beta);
    let model = match first {
        SolveResult::Unsat => return SiteOutcome::TargetUnsat,
        SolveResult::Unknown => return SiteOutcome::Unknown,
        SolveResult::Sat(m) => m,
    };
    let mut current_input = generate_input(format, seed, &model);

    // Line 4–5: does the initial input already trigger?
    let res = test_candidate(program, &current_input, label, &config.machine);
    if res.triggered {
        return SiteOutcome::Exposed(Bug {
            input: current_input,
            enforced: 0,
            enforced_labels: Vec::new(),
            error_type: res.error_type.unwrap_or_default(),
            constraint: extraction.beta.clone(),
        });
    }

    // Lines 9–16: goal-directed enforcement, with one refinement over the
    // literal Figure 7 pseudo-code. For a conditional branch that executes
    // many times (a blocking loop à la png_memset), the compressed
    // condition pins the loop's trip count; enforcing it would make the
    // constraint unsatisfiable even though the overflow is reachable — the
    // paper's §2 narrative shows DIODE enforcing the *sanity checks*
    // instead. We therefore try the violated conditions in execution
    // order and permanently skip any whose enforcement is unsatisfiable
    // (sound: φ' only grows, so unsatisfiability is monotone). A skipped
    // blocking check is exactly the freedom §1.1 describes: the input may
    // traverse blocking checks along a different path.
    let mut phi_prime = SymBool::Const(true);
    let mut enforced_labels: Vec<Label> = Vec::new();
    let mut skipped: std::collections::HashSet<usize> = std::collections::HashSet::new();
    loop {
        if enforced_labels.len() >= config.max_enforcements {
            return SiteOutcome::Prevented(PreventedReason::Budget);
        }
        // Line 11–12: the first conditions in φ the previous input
        // violates, in program execution order.
        let input = current_input.clone();
        let lookup = move |o: u32| input.get(o as usize).copied().unwrap_or(0);
        let mut violated: Vec<usize> = extraction
            .phi
            .iter()
            .enumerate()
            .filter(|(i, c)| !skipped.contains(i) && !c.constraint.eval(&lookup))
            .map(|(i, _)| i)
            .collect();
        // Prefer enforcing check-like branches (a single dynamic
        // occurrence) over loop-exit branches (many occurrences, whose
        // compressed condition pins a trip count): the paper's enforced
        // branches are all sanity checks (§5.3), while loop conditions are
        // the blocking checks an input must remain free to flip (§1.1).
        violated.sort_by_key(|&i| (extraction.phi[i].occurrences > 1, i));
        if violated.is_empty() {
            return SiteOutcome::Prevented(PreventedReason::SatisfiesPhi {
                enforced: enforced_labels.len(),
            });
        }
        // Line 13: enforce the first violated condition whose conjunction
        // with φ' ∧ β stays satisfiable.
        let mut advanced = false;
        for idx in violated {
            let cond = &extraction.phi[idx];
            let query = phi_prime.and(&cond.constraint).and(&extraction.beta);
            match config.solve_query(&query) {
                SolveResult::Unsat => {
                    skipped.insert(idx);
                }
                SolveResult::Unknown => return SiteOutcome::Unknown,
                SolveResult::Sat(model) => {
                    phi_prime = phi_prime.and(&cond.constraint);
                    enforced_labels.push(cond.label);
                    current_input = generate_input(format, seed, &model);
                    advanced = true;
                    // Line 14–15: test the new input.
                    let res = test_candidate(program, &current_input, label, &config.machine);
                    if res.triggered {
                        return SiteOutcome::Exposed(Bug {
                            input: current_input,
                            enforced: enforced_labels.len(),
                            enforced_labels,
                            error_type: res.error_type.unwrap_or_default(),
                            constraint: query,
                        });
                    }
                    break;
                }
            }
        }
        if !advanced {
            // Every remaining flipped condition is unsatisfiable with β.
            return SiteOutcome::Prevented(PreventedReason::ConstraintUnsat {
                enforced: enforced_labels.len(),
            });
        }
    }
}

/// §5.4's blocking-check experiment: is β conjoined with *every* relevant
/// compressed seed-path condition (the "same path through the relevant
/// branches" constraint) still satisfiable? For the paper's benchmarks
/// this holds for only 2 of the 14 exposed sites.
#[must_use]
pub fn full_path_constraint_satisfiable(
    extraction: &Extraction,
    solver: &SolverConfig,
) -> Option<bool> {
    let mut query = extraction.beta.clone();
    for c in &extraction.phi {
        query = query.and(&c.constraint);
    }
    match solve_with(&query, solver, None).0 {
        SolveResult::Sat(_) => Some(true),
        SolveResult::Unsat => Some(false),
        SolveResult::Unknown => None,
    }
}

#[allow(unused)]
fn _assert_api_types_are_send() {
    fn check<T: Send>() {}
    check::<DiodeConfig>();
}
