//! Goal-directed conditional branch enforcement (Figure 7, §3.3).
//!
//! Given a target site, the algorithm:
//!
//! 1. solves the target constraint β alone; if the generated input
//!    triggers the overflow, done (this is how 9 of the paper's 14
//!    overflows are found — "without enforcing any conditional branches");
//! 2. otherwise repeatedly finds the **first** (in program execution
//!    order) relevant compressed seed-path condition the previous
//!    candidate violates — the *first flipped branch* — conjoins it onto
//!    the constraint, re-solves, and re-tests;
//! 3. stops when an input triggers (site *exposed*), the constraint
//!    becomes unsatisfiable, or the candidate satisfies all of φ without
//!    triggering (sanity checks *prevent* the overflow).

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use diode_format::{Fixup, FormatDesc};
use diode_interp::{run, run_and_capture, run_from, run_probed, Concrete, MachineConfig, Symbolic};
use diode_lang::{Label, Program};
use diode_solver::{solve_with, SolveResult, SolverCache, SolverConfig};
use diode_symbolic::SymBool;

use crate::pipeline::{classify_run, extract, extract_resumed, generate_input, CandidateResult};
use crate::pipeline::{Extraction, TargetSite};
use crate::snapshot::{SiteSlot, TestPlan};

/// Why the enforcement loop concluded that no overflow-triggering input
/// exists (within budget).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreventedReason {
    /// φ' ∧ β became unsatisfiable after enforcing some branches.
    ConstraintUnsat {
        /// Branches enforced before unsatisfiability.
        enforced: usize,
    },
    /// The candidate satisfied every relevant compressed condition yet did
    /// not trigger the overflow (Figure 7 line 11).
    SatisfiesPhi {
        /// Branches enforced before the loop exited.
        enforced: usize,
    },
    /// Budget (enforcement count or solver) exhausted.
    Budget,
}

/// Outcome of analysing one target site.
#[derive(Debug, Clone)]
pub enum SiteOutcome {
    /// An overflow-triggering input was generated.
    Exposed(Bug),
    /// β itself is unsatisfiable — no input can overflow the observed
    /// target expression.
    TargetUnsat,
    /// Sanity checks prevent the overflow.
    Prevented(PreventedReason),
    /// The solver gave up (should not happen on the benchmarks).
    Unknown,
}

impl SiteOutcome {
    /// The generated bug, if the site was exposed.
    #[must_use]
    pub fn bug(&self) -> Option<&Bug> {
        match self {
            SiteOutcome::Exposed(b) => Some(b),
            _ => None,
        }
    }

    /// Stable outcome token used by corpus witnesses and provenance
    /// verdict events (`exposed`, `target-unsat`, `prevented:*`,
    /// `unknown`).
    #[must_use]
    pub fn token(&self) -> String {
        match self {
            SiteOutcome::Exposed(_) => "exposed".to_string(),
            SiteOutcome::TargetUnsat => "target-unsat".to_string(),
            SiteOutcome::Prevented(PreventedReason::ConstraintUnsat { enforced }) => {
                format!("prevented:constraint-unsat:{enforced}")
            }
            SiteOutcome::Prevented(PreventedReason::SatisfiesPhi { enforced }) => {
                format!("prevented:satisfies-phi:{enforced}")
            }
            SiteOutcome::Prevented(PreventedReason::Budget) => "prevented:budget".to_string(),
            SiteOutcome::Unknown => "unknown".to_string(),
        }
    }
}

/// A generated overflow-triggering input and its metadata (one Table 2
/// row).
#[derive(Debug, Clone)]
pub struct Bug {
    /// The triggering input file.
    pub input: Vec<u8>,
    /// Number of conditional branches enforced before triggering.
    pub enforced: usize,
    /// Labels of the enforced branches, in enforcement order.
    pub enforced_labels: Vec<Label>,
    /// Error classification observed on the triggering run.
    pub error_type: String,
    /// The final solved constraint (φ' ∧ β) — the query behind Table 2's
    /// "Target + Enforced Success Rate" experiment (§5.6).
    pub constraint: SymBool,
}

/// Prefix-snapshot telemetry for one site's enforcement loop.
#[derive(Debug, Clone)]
pub struct SiteSnapshotInfo {
    /// Step count of the statement performing the first divergent-byte
    /// read on the candidate path (`None`: never probed, or the path
    /// reads no divergent byte).
    pub first_divergent_step: Option<u64>,
    /// Sorted input offsets that may differ between candidate inputs
    /// (β's bytes, φ's bytes, checksum-fixup destinations).
    pub divergent_bytes: Vec<u32>,
    /// Candidate inputs executed for this site.
    pub candidates: u64,
    /// Candidate executions resumed from the prefix snapshot.
    pub resumed: u64,
    /// The stage-2 extraction itself resumed from the prefix snapshot
    /// (warmed campaigns only).
    pub extract_resumed: bool,
}

/// A full per-site analysis report.
#[derive(Debug)]
pub struct SiteReport {
    /// Site name.
    pub site: String,
    /// Site label.
    pub label: Label,
    /// Relevant input bytes (stage 1).
    pub relevant_bytes: Vec<u32>,
    /// Outcome (exposed / unsat / prevented).
    pub outcome: SiteOutcome,
    /// Total dynamic occurrences of relevant branches on the seed path
    /// (Table 2's denominator).
    pub total_relevant: usize,
    /// Number of distinct relevant compressed conditions in φ.
    pub phi_len: usize,
    /// Wall-clock discovery time for this site (extraction excluded).
    pub discovery_time: Duration,
    /// The extraction (target expression, β, φ), for further experiments.
    pub extraction: Option<Extraction>,
    /// Prefix-snapshot telemetry (`None` when snapshots are disabled or
    /// the site was never enforced).
    pub snapshot: Option<SiteSnapshotInfo>,
    /// Largest interpreter-heap high-water mark among this site's runs
    /// (extraction, candidates, validation) on this thread — the site's
    /// peak simulated-memory footprint. Deterministic: a function of
    /// the executed programs, not the host.
    pub peak_heap_bytes: u64,
}

/// Tunables for the site analysis.
#[derive(Debug, Clone)]
pub struct DiodeConfig {
    /// Interpreter limits.
    pub machine: MachineConfig,
    /// Solver limits.
    pub solver: SolverConfig,
    /// Safety bound on enforcement iterations (the paper's sites need at
    /// most 5; the bound only guards against pathological programs).
    pub max_enforcements: usize,
    /// Optional shared solver-query cache. When set, every deterministic
    /// (diversity-free) constraint query in the enforcement loop is
    /// memoized through it; `diode-engine` campaigns install one cache
    /// across all workers so repeated φ′∧β queries are answered without
    /// re-blasting. `None` keeps the original solve-from-scratch path.
    pub query_cache: Option<Arc<SolverCache>>,
    /// Prefix-snapshot re-execution (on by default): the enforcement
    /// loop's first candidate run locates the first read of a
    /// solver-patchable byte, the second captures the machine state at
    /// that boundary, and every later candidate resumes from it —
    /// replaying only the divergent suffix. Off preserves the original
    /// full-re-execution path for differential testing; results are
    /// byte-identical either way.
    pub prefix_snapshots: bool,
}

impl Default for DiodeConfig {
    fn default() -> Self {
        DiodeConfig {
            machine: MachineConfig::default(),
            solver: SolverConfig::default(),
            max_enforcements: 32,
            query_cache: None,
            prefix_snapshots: true,
        }
    }
}

impl DiodeConfig {
    /// This configuration with `cache` installed as the query cache.
    #[must_use]
    pub fn with_query_cache(mut self, cache: Arc<SolverCache>) -> Self {
        self.query_cache = Some(cache);
        self
    }

    /// Solves a deterministic constraint query, through the shared cache
    /// when one is installed.
    #[must_use]
    pub fn solve_query(&self, cond: &SymBool) -> SolveResult {
        self.solve_query_for(cond, diode_obs::QueryOrigin::Other)
    }

    /// [`DiodeConfig::solve_query`] with provenance attribution: when the
    /// current job scope is auditing, records a query event carrying the
    /// structural constraint fingerprint, the originating decision, the
    /// solver's answer, and (cached queries only) advisory cache-hit
    /// attribution. Costs nothing extra when auditing is off.
    #[must_use]
    pub fn solve_query_for(&self, cond: &SymBool, origin: diode_obs::QueryOrigin) -> SolveResult {
        // Fingerprint only under an auditing scope: hashing the whole
        // constraint is not free, and neither is the hex string.
        let fingerprint = diode_obs::audit_active().then(|| diode_solver::fingerprint_hex(cond));
        let (result, cache_hit) = match &self.query_cache {
            // The cache records its own solve span, with per-query
            // hit/miss attribution.
            Some(cache) => {
                let (result, hit) = cache.solve_with_info(cond, &self.solver);
                (result, Some(hit))
            }
            None => {
                let _span = diode_obs::span(diode_obs::Phase::Solve);
                (solve_with(cond, &self.solver, None).0, None)
            }
        };
        if let Some(fingerprint) = fingerprint {
            let verdict = match &result {
                SolveResult::Sat(_) => diode_obs::QueryVerdict::Sat,
                SolveResult::Unsat => diode_obs::QueryVerdict::Unsat,
                SolveResult::Unknown => diode_obs::QueryVerdict::Unknown,
            };
            diode_obs::audit_event(diode_obs::ProvenanceEvent::Query {
                origin,
                fingerprint,
                verdict,
                cache_hit,
            });
        }
        result
    }
}

/// The sorted input offsets that may differ between candidate inputs for
/// one site: every byte the solver can patch (β's and φ's variables)
/// plus every byte reconstruction rewrites (checksum destinations). The
/// first read of any of these is where candidate executions can diverge
/// — and therefore the prefix-snapshot boundary.
#[must_use]
fn divergent_bytes(extraction: &Extraction, format: &FormatDesc) -> Vec<u32> {
    let mut set: BTreeSet<u32> = extraction.beta_bytes.iter().copied().collect();
    for cond in &extraction.phi {
        set.extend(cond.constraint.input_bytes());
    }
    for fixup in format.fixups() {
        let Fixup::Crc32 { dest, .. } = fixup;
        set.extend(*dest..dest + 4);
    }
    set.into_iter().collect()
}

/// Runs every candidate input of one site's enforcement loop, resuming
/// from the site's prefix snapshot when one is available (and building it
/// when not: the first candidate probes for the divergence point, the
/// second captures the snapshot en route). Without a slot this is plain
/// [`test_candidate`](crate::test_candidate) behaviour.
struct CandidateTester<'a> {
    program: &'a Program,
    label: Label,
    /// The candidate-run config (branch recording off, as always).
    machine: MachineConfig,
    /// The capture config: the caller's machine config verbatim, so a
    /// snapshot captured here is also valid for extraction resumes
    /// (which need the prefix's branch observations).
    capture_machine: MachineConfig,
    divergent: Vec<u32>,
    slot: Option<Arc<SiteSlot>>,
    candidates: u64,
    resumed: u64,
}

impl<'a> CandidateTester<'a> {
    fn new(
        program: &'a Program,
        label: Label,
        machine: &MachineConfig,
        divergent: Vec<u32>,
        slot: Option<Arc<SiteSlot>>,
    ) -> CandidateTester<'a> {
        let capture_machine = machine.clone();
        let mut machine = machine.clone();
        machine.record_branches = false;
        CandidateTester {
            program,
            label,
            machine,
            capture_machine,
            divergent,
            slot,
            candidates: 0,
            resumed: 0,
        }
    }

    fn test(&mut self, input: &[u8]) -> CandidateResult {
        self.candidates += 1;
        let Some(slot) = self.slot.clone() else {
            return self.plain(input);
        };
        match slot.plan() {
            TestPlan::Resume(snapshot) => {
                match run_from(self.program, input, &snapshot, &self.machine) {
                    Some(r) => {
                        slot.count_hit(true);
                        self.resumed += 1;
                        classify_run(&r, self.label)
                    }
                    None => {
                        slot.count_hit(false);
                        self.plain(input)
                    }
                }
            }
            TestPlan::Probe => {
                slot.count_miss();
                let (r, probe) = run_probed(
                    self.program,
                    input,
                    Concrete,
                    &self.machine,
                    &self.divergent,
                );
                slot.record_probe(probe);
                classify_run(&r, self.label)
            }
            TestPlan::Capture(step) => {
                slot.count_miss();
                // Capture under the tag-free symbolic policy with the
                // caller's full machine config: the stored snapshot then
                // serves both later candidates and (in warmed campaigns)
                // extraction resumes, which need prefix branches.
                let (r, snapshot) = run_and_capture(
                    self.program,
                    input,
                    Symbolic::relevant_bytes([]),
                    &self.capture_machine,
                    step,
                );
                if let Some(s) = snapshot {
                    // Tester captures bound the boundary by β ∪ φ ∪ CRC
                    // reads, not relevant-byte reads: safe for candidate
                    // resumes only.
                    slot.record_snapshot(step, s, false);
                }
                classify_run(&r, self.label)
            }
            TestPlan::Plain => {
                slot.count_miss();
                self.plain(input)
            }
        }
    }

    fn plain(&self, input: &[u8]) -> CandidateResult {
        classify_run(
            &run(self.program, input, Concrete, &self.machine),
            self.label,
        )
    }

    fn info(&self) -> SiteSnapshotInfo {
        SiteSnapshotInfo {
            first_divergent_step: self.slot.as_ref().and_then(|s| s.first_divergent_step()),
            divergent_bytes: self.divergent.clone(),
            candidates: self.candidates,
            resumed: self.resumed,
            extract_resumed: false,
        }
    }
}

/// The slot the enforcement loop should use: the caller's (campaign
/// cache) slot when snapshots are on, a fresh local slot when the caller
/// brought none, and none at all when the config disables snapshots.
fn effective_slot(config: &DiodeConfig, slot: Option<Arc<SiteSlot>>) -> Option<Arc<SiteSlot>> {
    if config.prefix_snapshots {
        slot.or_else(|| Some(Arc::new(SiteSlot::local())))
    } else {
        None
    }
}

/// Runs the complete DIODE analysis for one target site (Figure 7).
#[must_use]
pub fn analyze_site(
    program: &Program,
    seed: &[u8],
    format: &FormatDesc,
    site: &TargetSite,
    config: &DiodeConfig,
) -> SiteReport {
    analyze_site_with_snapshots(program, seed, format, site, config, None)
}

/// [`analyze_site`] with an explicit snapshot slot — the campaign entry
/// point: `diode-engine` hands every worker the per-`(unit, site)` slot
/// of its shared [`SnapshotCache`](crate::SnapshotCache) so counters
/// aggregate campaign-wide. `None` falls back to a site-local slot (or
/// none, when `config.prefix_snapshots` is off).
#[must_use]
pub fn analyze_site_with_snapshots(
    program: &Program,
    seed: &[u8],
    format: &FormatDesc,
    site: &TargetSite,
    config: &DiodeConfig,
    slot: Option<Arc<SiteSlot>>,
) -> SiteReport {
    let slot = effective_slot(config, slot);
    // Start a fresh per-site window on the thread-local peak-heap
    // gauge; every interpreter run below notes its heap peak there.
    let _ = diode_interp::take_peak_heap_bytes();
    // Warmed campaigns resume the stage-2 symbolic seed run from the
    // site's prefix snapshot; everyone else re-executes from `main`.
    let mut extract_was_resumed = false;
    let extraction = {
        let _span = diode_obs::span(diode_obs::Phase::Extract);
        match slot.as_ref().and_then(|s| s.extract_snapshot()) {
            Some(snapshot) => {
                match extract_resumed(program, seed, site, &config.machine, &snapshot) {
                    Some(e) => {
                        extract_was_resumed = true;
                        slot.as_ref().unwrap().count_extract_resume();
                        Some(e)
                    }
                    None => extract(program, seed, site, &config.machine),
                }
            }
            None => extract(program, seed, site, &config.machine),
        }
    };
    let Some(extraction) = extraction else {
        diode_obs::audit_event(diode_obs::ProvenanceEvent::Verdict {
            outcome: SiteOutcome::Unknown.token(),
            enforced: 0,
            witness: None,
        });
        return SiteReport {
            site: site.site.to_string(),
            label: site.label,
            relevant_bytes: site.relevant_bytes.clone(),
            outcome: SiteOutcome::Unknown,
            total_relevant: 0,
            phi_len: 0,
            discovery_time: Duration::ZERO,
            extraction: None,
            snapshot: None,
            peak_heap_bytes: diode_interp::take_peak_heap_bytes(),
        };
    };
    let start = Instant::now();
    let mut tester = CandidateTester::new(
        program,
        site.label,
        &config.machine,
        divergent_bytes(&extraction, format),
        slot,
    );
    let outcome = {
        let _span = diode_obs::span(diode_obs::Phase::Enforce);
        enforce_with(seed, format, &extraction, config, &mut tester)
    };
    if diode_obs::audit_active() {
        // The enforced count mirrors what the verdict itself reports
        // (Budget terminates with exactly `max_enforcements` enforced).
        let (enforced, witness) = match &outcome {
            SiteOutcome::Exposed(bug) => (bug.enforced, Some(diode_obs::fnv64_hex(&bug.input))),
            SiteOutcome::Prevented(PreventedReason::ConstraintUnsat { enforced })
            | SiteOutcome::Prevented(PreventedReason::SatisfiesPhi { enforced }) => {
                (*enforced, None)
            }
            SiteOutcome::Prevented(PreventedReason::Budget) => (config.max_enforcements, None),
            SiteOutcome::TargetUnsat | SiteOutcome::Unknown => (0, None),
        };
        diode_obs::audit_event(diode_obs::ProvenanceEvent::Verdict {
            outcome: outcome.token(),
            enforced: enforced as u32,
            witness,
        });
    }
    let snapshot = tester.slot.is_some().then(|| {
        let mut info = tester.info();
        info.extract_resumed = extract_was_resumed;
        info
    });
    SiteReport {
        site: site.site.to_string(),
        label: site.label,
        relevant_bytes: site.relevant_bytes.clone(),
        outcome,
        total_relevant: extraction.total_relevant,
        phi_len: extraction.phi.len(),
        discovery_time: start.elapsed(),
        extraction: Some(extraction),
        snapshot,
        peak_heap_bytes: diode_interp::take_peak_heap_bytes(),
    }
}

/// The Figure 7 loop, operating on an existing extraction.
#[must_use]
pub fn enforce(
    program: &Program,
    seed: &[u8],
    format: &FormatDesc,
    label: Label,
    extraction: &Extraction,
    config: &DiodeConfig,
) -> SiteOutcome {
    let mut tester = CandidateTester::new(
        program,
        label,
        &config.machine,
        divergent_bytes(extraction, format),
        effective_slot(config, None),
    );
    let _span = diode_obs::span(diode_obs::Phase::Enforce);
    enforce_with(seed, format, extraction, config, &mut tester)
}

/// The Figure 7 loop body, with candidate execution delegated to the
/// (possibly snapshot-resuming) tester.
#[must_use]
fn enforce_with(
    seed: &[u8],
    format: &FormatDesc,
    extraction: &Extraction,
    config: &DiodeConfig,
    tester: &mut CandidateTester<'_>,
) -> SiteOutcome {
    // Line 2–3: solve β alone.
    let first = config.solve_query_for(&extraction.beta, diode_obs::QueryOrigin::Beta);
    let model = match first {
        SolveResult::Unsat => return SiteOutcome::TargetUnsat,
        SolveResult::Unknown => return SiteOutcome::Unknown,
        SolveResult::Sat(m) => m,
    };
    let mut current_input = generate_input(format, seed, &model);

    // Line 4–5: does the initial input already trigger?
    let res = tester.test(&current_input);
    if res.triggered {
        return SiteOutcome::Exposed(Bug {
            input: current_input,
            enforced: 0,
            enforced_labels: Vec::new(),
            error_type: res.error_type.unwrap_or_default(),
            constraint: extraction.beta.clone(),
        });
    }

    // Lines 9–16: goal-directed enforcement, with one refinement over the
    // literal Figure 7 pseudo-code. For a conditional branch that executes
    // many times (a blocking loop à la png_memset), the compressed
    // condition pins the loop's trip count; enforcing it would make the
    // constraint unsatisfiable even though the overflow is reachable — the
    // paper's §2 narrative shows DIODE enforcing the *sanity checks*
    // instead. We therefore try the violated conditions in execution
    // order and permanently skip any whose enforcement is unsatisfiable
    // (sound: φ' only grows, so unsatisfiability is monotone). A skipped
    // blocking check is exactly the freedom §1.1 describes: the input may
    // traverse blocking checks along a different path.
    let mut phi_prime = SymBool::Const(true);
    let mut enforced_labels: Vec<Label> = Vec::new();
    let mut skipped: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut iteration: u32 = 0;
    loop {
        iteration += 1;
        if enforced_labels.len() >= config.max_enforcements {
            diode_obs::audit_event(diode_obs::ProvenanceEvent::Budget { iteration });
            return SiteOutcome::Prevented(PreventedReason::Budget);
        }
        // Line 11–12: the first conditions in φ the previous input
        // violates, in program execution order.
        let input = current_input.clone();
        let lookup = move |o: u32| input.get(o as usize).copied().unwrap_or(0);
        let mut violated: Vec<usize> = extraction
            .phi
            .iter()
            .enumerate()
            .filter(|(i, c)| !skipped.contains(i) && !c.constraint.eval(&lookup))
            .map(|(i, _)| i)
            .collect();
        // Prefer enforcing check-like branches (a single dynamic
        // occurrence) over loop-exit branches (many occurrences, whose
        // compressed condition pins a trip count): the paper's enforced
        // branches are all sanity checks (§5.3), while loop conditions are
        // the blocking checks an input must remain free to flip (§1.1).
        violated.sort_by_key(|&i| (extraction.phi[i].occurrences > 1, i));
        if violated.is_empty() {
            return SiteOutcome::Prevented(PreventedReason::SatisfiesPhi {
                enforced: enforced_labels.len(),
            });
        }
        // Line 13: enforce the first violated condition whose conjunction
        // with φ' ∧ β stays satisfiable.
        let mut advanced = false;
        for idx in violated {
            let cond = &extraction.phi[idx];
            diode_obs::audit_event(diode_obs::ProvenanceEvent::Enforce {
                iteration,
                condition: idx as u32,
                label: cond.label.0,
                action: diode_obs::EnforceAction::Considered,
            });
            let query = phi_prime.and(&cond.constraint).and(&extraction.beta);
            match config.solve_query_for(&query, diode_obs::QueryOrigin::Enforce) {
                SolveResult::Unsat => {
                    diode_obs::audit_event(diode_obs::ProvenanceEvent::Enforce {
                        iteration,
                        condition: idx as u32,
                        label: cond.label.0,
                        action: diode_obs::EnforceAction::SkippedUnsat,
                    });
                    skipped.insert(idx);
                }
                SolveResult::Unknown => return SiteOutcome::Unknown,
                SolveResult::Sat(model) => {
                    diode_obs::audit_event(diode_obs::ProvenanceEvent::Enforce {
                        iteration,
                        condition: idx as u32,
                        label: cond.label.0,
                        action: diode_obs::EnforceAction::Enforced,
                    });
                    phi_prime = phi_prime.and(&cond.constraint);
                    enforced_labels.push(cond.label);
                    current_input = generate_input(format, seed, &model);
                    advanced = true;
                    // Line 14–15: test the new input.
                    let res = tester.test(&current_input);
                    if res.triggered {
                        return SiteOutcome::Exposed(Bug {
                            input: current_input,
                            enforced: enforced_labels.len(),
                            enforced_labels,
                            error_type: res.error_type.unwrap_or_default(),
                            constraint: query,
                        });
                    }
                    break;
                }
            }
        }
        if !advanced {
            // Every remaining flipped condition is unsatisfiable with β.
            return SiteOutcome::Prevented(PreventedReason::ConstraintUnsat {
                enforced: enforced_labels.len(),
            });
        }
    }
}

/// §5.4's blocking-check experiment: is β conjoined with *every* relevant
/// compressed seed-path condition (the "same path through the relevant
/// branches" constraint) still satisfiable? For the paper's benchmarks
/// this holds for only 2 of the 14 exposed sites.
#[must_use]
pub fn full_path_constraint_satisfiable(
    extraction: &Extraction,
    solver: &SolverConfig,
) -> Option<bool> {
    let mut query = extraction.beta.clone();
    for c in &extraction.phi {
        query = query.and(&c.constraint);
    }
    match solve_with(&query, solver, None).0 {
        SolveResult::Sat(_) => Some(true),
        SolveResult::Unsat => Some(false),
        SolveResult::Unknown => None,
    }
}

#[allow(unused)]
fn _assert_api_types_are_send() {
    fn check<T: Send>() {}
    check::<DiodeConfig>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::identify_target_sites;
    use diode_lang::parse;

    /// Two sites behind a shared prefix: site 2's candidates replay the
    /// full processing of site 1 unless snapshots cut it away.
    const TWO_SITES: &str = r#"fn main() {
        a = zext32(in[0]) << 8 | zext32(in[1]);
        if a > 200 { error("a too big"); }
        buf0 = alloc("s0@3", a * 30000000);
        i = 0;
        while i < a { buf0[i] = trunc8(i); i = i + 1; }
        free(buf0);
        b = zext32(in[2]) << 8 | zext32(in[3]);
        if b > 60000 { error("b too big"); }
        buf1 = alloc("s1@9", b * 80000);
    }"#;

    fn reports(prefix_snapshots: bool) -> Vec<SiteReport> {
        let program = parse(TWO_SITES).unwrap();
        let seed = vec![0x00, 0x08, 0x00, 0x10];
        let config = DiodeConfig {
            prefix_snapshots,
            ..DiodeConfig::default()
        };
        identify_target_sites(&program, &seed, &config.machine)
            .iter()
            .map(|t| analyze_site(&program, &seed, &FormatDesc::new("two"), t, &config))
            .collect()
    }

    #[test]
    fn snapshot_and_full_paths_classify_identically() {
        let on = reports(true);
        let off = reports(false);
        assert_eq!(on.len(), 2);
        for (a, b) in on.iter().zip(&off) {
            assert_eq!(a.site, b.site);
            assert_eq!(format!("{:?}", a.outcome), format!("{:?}", b.outcome));
            assert!(b.snapshot.is_none(), "disabled path reports no telemetry");
        }
    }

    #[test]
    fn enforcement_loop_reports_snapshot_telemetry() {
        let on = reports(true);
        for r in &on {
            let info = r.snapshot.as_ref().expect("snapshots on");
            assert!(info.candidates >= 1, "{}: {info:?}", r.site);
            assert!(
                !info.divergent_bytes.is_empty(),
                "{}: both sites are input-driven",
                r.site
            );
            assert!(info.resumed <= info.candidates.saturating_sub(2));
        }
        // At least one site's loop ran several candidates; with three or
        // more, the probe/capture/resume ladder completes and the later
        // candidates resume.
        if let Some(deep) = on
            .iter()
            .filter_map(|r| r.snapshot.as_ref())
            .find(|i| i.candidates >= 3)
        {
            assert!(deep.resumed >= 1, "{deep:?}");
        }
    }
}
