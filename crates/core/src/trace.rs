//! Trace comparison (§4.5): finding the first flipped branch by re-running
//! the program.
//!
//! The paper's implementation "records the path taken at all conditional
//! branches that the seed input executes" and compares the candidate's
//! trace against the seed's to find the first divergence. The enforcement
//! loop in [`crate::enforce`] uses the equivalent symbolic-evaluation
//! formulation (Figure 7's "first condition in φ that the previous input I
//! does not satisfy"); this module provides the literal trace-diff
//! primitive for diagnostics, walkthrough tooling, and cross-checking the
//! two formulations.

use diode_interp::{run, BranchObs, Concrete, MachineConfig};
use diode_lang::{Label, Program};

/// One divergence between two branch traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Both traces reach the same position but take different directions.
    Flipped {
        /// Position in the seed trace (index into its observations).
        position: usize,
        /// The branch label.
        label: Label,
        /// Direction the seed took.
        seed_taken: bool,
    },
    /// The candidate's trace ends early (it was rejected / crashed before
    /// reaching this seed observation).
    CandidateEnded {
        /// Position in the seed trace where the candidate's trace ends.
        position: usize,
        /// The next branch label the seed executed.
        label: Label,
    },
    /// The traces execute different branch *labels* at this position (the
    /// paths structurally separated earlier, e.g. inside a taken branch).
    DifferentBranch {
        /// Position in both traces.
        position: usize,
        /// Label in the seed trace.
        seed_label: Label,
        /// Label in the candidate trace.
        candidate_label: Label,
    },
}

impl Divergence {
    /// Position of the divergence in the seed trace.
    #[must_use]
    pub fn position(&self) -> usize {
        match self {
            Divergence::Flipped { position, .. }
            | Divergence::CandidateEnded { position, .. }
            | Divergence::DifferentBranch { position, .. } => *position,
        }
    }
}

/// Compares two branch observation sequences (seed first) and returns the
/// first divergence, if any.
#[must_use]
pub fn first_divergence<C1, C2>(
    seed: &[BranchObs<C1>],
    candidate: &[BranchObs<C2>],
) -> Option<Divergence> {
    for (i, s) in seed.iter().enumerate() {
        let Some(c) = candidate.get(i) else {
            return Some(Divergence::CandidateEnded {
                position: i,
                label: s.label,
            });
        };
        if s.label != c.label {
            return Some(Divergence::DifferentBranch {
                position: i,
                seed_label: s.label,
                candidate_label: c.label,
            });
        }
        if s.taken != c.taken {
            return Some(Divergence::Flipped {
                position: i,
                label: s.label,
                seed_taken: s.taken,
            });
        }
    }
    None
}

/// Runs the program on both inputs and reports the first divergence
/// between the recorded branch traces (§4.5's instrumented comparison).
#[must_use]
pub fn diff_paths(
    program: &Program,
    seed: &[u8],
    candidate: &[u8],
    machine: &MachineConfig,
) -> Option<Divergence> {
    let mut cfg = machine.clone();
    cfg.record_branches = true;
    let seed_run = run(program, seed, Concrete, &cfg);
    let cand_run = run(program, candidate, Concrete, &cfg);
    first_divergence(&seed_run.branches, &cand_run.branches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_lang::parse;

    const PROGRAM: &str = r#"
        fn main() {
            n = zext32(in[0]);
            if n > 100 { error("too big"); }
            i = 0;
            while i < n { i = i + 1; }
            if n == 7 { warn("lucky"); }
        }
    "#;

    fn cfg() -> MachineConfig {
        MachineConfig::default()
    }

    #[test]
    fn identical_inputs_have_no_divergence() {
        let p = parse(PROGRAM).unwrap();
        assert_eq!(diff_paths(&p, &[5], &[5], &cfg()), None);
    }

    #[test]
    fn sanity_check_flip_is_detected_first() {
        let p = parse(PROGRAM).unwrap();
        // Candidate 200 fails the n > 100 check: the very first branch
        // flips (position 0) and the candidate's trace ends there.
        match diff_paths(&p, &[5], &[200], &cfg()) {
            Some(Divergence::Flipped {
                position: 0,
                seed_taken: false,
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loop_trip_count_divergence_is_located_at_the_exit() {
        let p = parse(PROGRAM).unwrap();
        // Seed loops 5 times, candidate 8: both take the same direction for
        // the first 5 tests; the divergence is the seed's exit observation.
        match diff_paths(&p, &[5], &[8], &cfg()) {
            Some(Divergence::Flipped {
                position,
                seed_taken: false,
                ..
            }) => assert_eq!(position, 1 + 5), // the if, 5 taken tests, then exit
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn candidate_ending_early_is_reported() {
        let src = r#"
            fn main() {
                if in[0] == 0u8 { error("zero"); }
                if in[1] > 10u8 { warn("big"); }
            }
        "#;
        let p = parse(src).unwrap();
        match diff_paths(&p, &[1, 0], &[0, 0], &cfg()) {
            // The first branch itself flips (seed false, candidate true).
            Some(Divergence::Flipped { position: 0, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        // Same direction at branch 0, then the candidate errors out…
        // that cannot happen here since branch 0 decides the error; use a
        // crc-style gate instead:
        let src2 = r#"
            fn main() {
                x = in[0];
                if x > 100u8 { skip; } else { skip; }
                if in[1] == 9u8 { error("gate"); }
                if in[2] > 10u8 { warn("big"); }
            }
        "#;
        let p2 = parse(src2).unwrap();
        match diff_paths(&p2, &[1, 0, 20], &[1, 9, 20], &cfg()) {
            Some(Divergence::Flipped { position: 1, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trace_diff_agrees_with_symbolic_first_flip_on_dillo() {
        // Cross-check the two formulations on a real benchmark: a
        // candidate with an oversized height flips the height sanity check
        // both ways of looking at it.
        let app = diode_apps_shim();
        let (program, seed, format) = app;
        let patches = 2_000_000u32
            .to_be_bytes()
            .into_iter()
            .enumerate()
            .map(|(i, v)| (20 + i as u32, v));
        let candidate = format.reconstruct(&seed, patches);
        let div = diff_paths(&program, &seed, &candidate, &cfg()).expect("diverges");
        // The divergence must be a flip at a sanity check the seed passed,
        // before any loop runs differ (the height check precedes the
        // memset loop).
        match div {
            Divergence::Flipped { seed_taken, .. } => assert!(!seed_taken),
            other => panic!("unexpected {other:?}"),
        }
    }

    // Small indirection to keep this crate's dev-dependencies: the Dillo
    // app lives in diode-apps, which depends on this crate's siblings.
    fn diode_apps_shim() -> (Program, Vec<u8>, diode_format::FormatDesc) {
        let app = diode_apps::dillo::app();
        (app.program, app.seed, app.format)
    }
}
