//! Human-readable bug reports — the pipeline's final box in Figure 1.

use std::fmt;
use std::time::Duration;

use diode_format::FormatDesc;

use crate::enforce::{Bug, SiteOutcome, SiteReport};

/// A rendered bug report for one exposed target site, combining the
/// analysis metadata with Hachoir-style field names.
#[derive(Debug)]
pub struct BugReport<'a> {
    site: &'a SiteReport,
    bug: &'a Bug,
    format: &'a FormatDesc,
    analysis_time: Duration,
}

impl<'a> BugReport<'a> {
    /// Builds a report for an exposed site; `None` if the site was not
    /// exposed.
    #[must_use]
    pub fn for_site(
        site: &'a SiteReport,
        format: &'a FormatDesc,
        analysis_time: Duration,
    ) -> Option<Self> {
        match &site.outcome {
            SiteOutcome::Exposed(bug) => Some(BugReport {
                site,
                bug,
                format,
                analysis_time,
            }),
            _ => None,
        }
    }

    /// The triggering input bytes.
    #[must_use]
    pub fn input(&self) -> &[u8] {
        &self.bug.input
    }

    /// The relevant fields and the values the triggering input gives them.
    #[must_use]
    pub fn field_values(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for path in self.format.describe_bytes(&self.site.relevant_bytes) {
            if let Some(v) = self.format.field_value(&self.bug.input, &path) {
                out.push((path, v));
            }
        }
        out
    }
}

impl fmt::Display for BugReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== DIODE bug report: {} ===", self.site.site)?;
        writeln!(f, "error type        : {}", self.bug.error_type)?;
        writeln!(
            f,
            "enforced branches : {} of {} relevant on the path",
            self.bug.enforced, self.site.total_relevant
        )?;
        writeln!(
            f,
            "analysis/discovery: {:?} / {:?}",
            self.analysis_time, self.site.discovery_time
        )?;
        writeln!(f, "relevant fields   :")?;
        for (path, value) in self.field_values() {
            writeln!(f, "  {path:<28} = {value} ({value:#x})")?;
        }
        if let Some(extraction) = &self.site.extraction {
            writeln!(f, "target expression : {}", extraction.target_expr)?;
        }
        write!(f, "input ({} bytes)   : ", self.bug.input.len())?;
        for (i, b) in self.bug.input.iter().enumerate() {
            if i == 48 {
                write!(f, "…")?;
                break;
            }
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_program, DiodeConfig};

    #[test]
    fn report_renders_fields_and_metadata() {
        let app = diode_apps::dillo::app();
        let analysis = analyze_program(
            &app.program,
            &app.seed,
            &app.format,
            &DiodeConfig::default(),
        );
        let site = analysis.site("png.c@203").unwrap();
        let report =
            BugReport::for_site(site, &app.format, analysis.analysis_time).expect("exposed");
        let text = report.to_string();
        assert!(text.contains("png.c@203"), "{text}");
        assert!(text.contains("/ihdr/width"), "{text}");
        assert!(text.contains("target expression"), "{text}");
        let fields = report.field_values();
        assert!(fields.iter().any(|(p, _)| p == "/ihdr/height"));
        // Non-exposed sites have no report.
        let unsat = analysis.site("png.c@421").unwrap();
        assert!(BugReport::for_site(unsat, &app.format, analysis.analysis_time).is_none());
    }
}
