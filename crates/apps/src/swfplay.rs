//! SwfPlay 0.5.5 (swfdec) — SWF container with an embedded JPEG stream.
//!
//! Table 1's SwfPlay row: 8 target sites, 3 exposed with **no relevant
//! sanity checks** (the paper's "0 enforced, 200/200" rows) and 5 with
//! unsatisfiable target constraints (all sized from single bytes or
//! bounded sums).
//!
//! The three exposed sites are sized from the JPEG SOF width/height
//! fields, which swfdec uses without any validation:
//!
//! * `jpeg.c@192` — DCT coefficient store `mcu_x * mcu_y * 384`; its path
//!   to the site contains *no relevant conditional branches*, which is why
//!   this is one of the paper's two sites where the full seed-path
//!   constraint is satisfiable (§5.4). A failed allocation aborts at the
//!   start of the decode loop (the SIGABRT row of Table 2).
//! * `jpeg_rgb_decoder.c@253` — RGBA output `width * height * 4`.
//! * `jpeg_rgb_decoder.c@257` — row-staging buffer
//!   `height * (width * 3 + 8)`.
//!
//! Between `jpeg.c@192` and the RGB sites the decoder sizes its MCU row
//! index (a width-dependent loop), so the *full-path* constraint for the
//! RGB sites is blocked — only goal-directed enforcement's freedom to let
//! irrelevant-to-triggering branches flip keeps them reachable.

use diode_format::{FormatDesc, SeedBuilder};
use diode_lang::parse;

use crate::{App, ExpectedSite};

/// Seed JPEG geometry.
pub const SEED_WIDTH: u16 = 96;
/// Seed JPEG height.
pub const SEED_HEIGHT: u16 = 64;

const PROGRAM: &str = r#"
fn be16at(p) {
    return zext32(in[p]) << 8 | zext32(in[p + 1]);
}

fn main() {
    // SWF container: "FWS" + version + file length + DefineBitsJPEG2 tag.
    if in[0] != 0x46u8 || in[1] != 0x57u8 || in[2] != 0x53u8 {
        error("not an SWF file");
    }
    version = in[3];
    if version > 10u8 {
        error("unsupported SWF version");
    }
    tag = in[8];
    if tag != 21u8 {
        error("expected DefineBitsJPEG2 tag");
    }
    // JPEG stream starts at offset 13.
    if in[13] != 0xFFu8 || in[14] != 0xD8u8 {
        error("missing JPEG SOI");
    }

    // ---- APP0 ---------------------------------------------------------------
    if in[15] != 0xFFu8 || in[16] != 0xE0u8 {
        error("missing APP0");
    }
    app0_len = be16at(17);
    if app0_len != 16 {
        error("unexpected APP0 length");
    }
    thumb_w = in[31];
    thumb_h = in[32];
    thumb = alloc("jpeg_marker.c@117", zext32(thumb_w) * zext32(thumb_h) * 3 + 4);
    if thumb == 0 { error("oom"); }

    // ---- DQT ----------------------------------------------------------------
    dqt = 33;
    if in[dqt] != 0xFFu8 || in[dqt + 1] != 0xDBu8 {
        error("missing DQT");
    }
    prec_id = in[dqt + 4];
    quant = alloc("jpeg_quant.c@88", 64 * (zext32(prec_id >> 4u8) + 1) + 4);
    if quant == 0 { error("oom"); }
    q = 0;
    while q < 64 {
        quant[zext64(q)] = in[dqt + 5 + q];
        q = q + 1;
    }

    // ---- DHT ----------------------------------------------------------------
    dht = 102;
    if in[dht] != 0xFFu8 || in[dht + 1] != 0xC4u8 {
        error("missing DHT");
    }
    total = 0;
    c = 0;
    while c < 16 {
        total = total + zext32(in[dht + 5 + c]);
        c = c + 1;
    }
    huff = alloc("jpeg_huffman.c@140", total + 17);
    if huff == 0 { error("oom"); }

    // ---- SOF0: frame header (no validation of dimensions!) -------------------
    sof = 135;
    if in[sof] != 0xFFu8 || in[sof + 1] != 0xC0u8 {
        error("missing SOF0");
    }
    height = be16at(sof + 5);
    width = be16at(sof + 7);
    ncomp = in[sof + 9];
    comps = alloc("jpeg.c@305", zext32(ncomp) * 12 + 4);
    if comps == 0 { error("oom"); }

    // DCT coefficient store: mcu_x * mcu_y * 384 — the §5.4 site whose
    // path contains no relevant conditional branches.
    mcu_x = (width + 7) >> 3;
    mcu_y = (height + 7) >> 3;
    coef = alloc("jpeg.c@192", mcu_x * mcu_y * 384);

    // MCU row index sizing: a width-dependent loop between jpeg.c@192 and
    // the RGB sites (blocks their full-path constraint).
    row_index_bytes = 0;
    x = 0;
    while x < mcu_x && x < 4096 {
        row_index_bytes = row_index_bytes + 48;
        x = x + 1;
    }

    // ---- RGB decoder output buffers (exposed, unchecked) ---------------------
    image = alloc("jpeg_rgb_decoder.c@253", width * height * 4);
    tmp = alloc("jpeg_rgb_decoder.c@257", height * (width * 3 + 8));

    // ---- SOS + entropy data ---------------------------------------------------
    sos = 148;
    if in[sos] != 0xFFu8 || in[sos + 1] != 0xDAu8 {
        error("missing SOS");
    }
    ns = in[sos + 4];
    scan = alloc("jpeg_scan.c@77", zext32(ns) * 2 + 6);
    if scan == 0 { error("oom"); }

    // swfdec aborts when the coefficient store could not be allocated.
    if coef == 0 {
        abort("swfdec: memory exhausted");
    }

    // Bounded entropy decode into the coefficient store.
    data = 158;
    m = 0;
    src = data;
    while m < mcu_x * mcu_y && src + 2 < inlen {
        coef[zext64(m) * 384u64] = in[src];
        m = m + 1;
        src = src + 1;
    }

    // Colour conversion probes across each buffer's full logical extent.
    true_img = zext64(width) * zext64(height) * 4u64;
    p = 0u64;
    while p < 64u64 {
        image[true_img * p / 64u64] = 0u8;
        p = p + 1u64;
    }
    true_tmp = zext64(height) * (zext64(width) * 3u64 + 8u64);
    p = 0u64;
    while p < 64u64 {
        tmp[true_tmp * p / 64u64] = 0u8;
        p = p + 1u64;
    }
    true_coef = zext64(mcu_x) * zext64(mcu_y) * 384u64;
    p = 0u64;
    while p < 64u64 {
        coef[true_coef * p / 64u64] = 0u8;
        p = p + 1u64;
    }
}
"#;

/// Builds a valid SWF-wrapped JPEG seed and its field map.
#[must_use]
pub fn seed() -> (Vec<u8>, FormatDesc) {
    let mut b = SeedBuilder::new();
    b.name("swf-jpeg");
    b.raw(b"FWS");
    b.u8("/swf/version", 5);
    b.le32("/swf/file_length", 0); // patched below via named field order
    b.u8("/swf/tag", 21);
    b.le32("/swf/tag_length", 180);
    // JPEG stream @13.
    b.raw(&[0xFF, 0xD8]); // SOI
    b.raw(&[0xFF, 0xE0]); // APP0 @15
    b.be16("/app0/length", 16);
    b.raw(b"JFIF\0");
    b.raw(&[1, 2]); // version
    b.u8("/app0/units", 0);
    b.be16("/app0/xdensity", 72);
    b.be16("/app0/ydensity", 72);
    b.u8("/app0/thumb_w", 4);
    b.u8("/app0/thumb_h", 3);
    // DQT @33.
    b.raw(&[0xFF, 0xDB]);
    b.be16("/dqt/length", 67);
    b.u8("/dqt/prec_id", 0);
    let table: Vec<u8> = (0..64).map(|i| (16 + i) as u8).collect();
    b.named_bytes("/dqt/table", &table);
    // DHT @102.
    b.raw(&[0xFF, 0xC4]);
    b.be16("/dht/length", 31);
    b.u8("/dht/class_id", 0);
    let counts: Vec<u8> = vec![0, 1, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0];
    b.named_bytes("/dht/counts", &counts);
    let symbols: Vec<u8> = (0..12).collect();
    b.named_bytes("/dht/symbols", &symbols);
    // SOF0 @135.
    b.raw(&[0xFF, 0xC0]);
    b.be16("/sof/length", 11);
    b.u8("/sof/precision", 8);
    b.be16("/sof/height", SEED_HEIGHT);
    b.be16("/sof/width", SEED_WIDTH);
    b.u8("/sof/ncomp", 1);
    b.raw(&[1, 0x11, 0]); // component spec
                          // SOS @148.
    b.raw(&[0xFF, 0xDA]);
    b.be16("/sos/length", 8);
    b.u8("/sos/ns", 1);
    b.raw(&[1, 0x00]); // component selector
    b.raw(&[0, 63, 0]); // spectral selection
                        // Entropy data @158 (raw stand-in) + EOI.
    let data: Vec<u8> = (0..192).map(|i| (i * 13 % 251) as u8).collect();
    b.named_bytes("/scan/data", &data);
    b.raw(&[0xFF, 0xD9]);
    b.finish()
}

/// The SwfPlay 0.5.5 benchmark application.
///
/// # Panics
///
/// Panics only if the embedded program fails to parse.
#[must_use]
pub fn app() -> App {
    let program = parse(PROGRAM).expect("swfplay program parses");
    let (seed, format) = seed();
    App {
        name: "SwfPlay 0.5.5",
        program,
        seed,
        format,
        expected: vec![
            ExpectedSite::exposed(
                "jpeg_rgb_decoder.c@253",
                None,
                "SIGSEGV/InvalidWrite",
                (0, 1736),
                (200, 200),
                None,
            ),
            ExpectedSite::exposed(
                "jpeg_rgb_decoder.c@257",
                None,
                "SIGSEGV/InvalidWrite",
                (0, 1736),
                (200, 200),
                None,
            ),
            ExpectedSite::exposed(
                "jpeg.c@192",
                None,
                "SIGABRT/InvalidWrite",
                (0, 1012),
                (200, 200),
                None,
            ),
            ExpectedSite::unsat("jpeg_marker.c@117"),
            ExpectedSite::unsat("jpeg_quant.c@88"),
            ExpectedSite::unsat("jpeg_huffman.c@140"),
            ExpectedSite::unsat("jpeg.c@305"),
            ExpectedSite::unsat("jpeg_scan.c@77"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_interp::{run, Concrete, MachineConfig, Outcome, Taint};

    #[test]
    fn seed_is_processed_cleanly() {
        let app = app();
        let r = run(&app.program, &app.seed, Concrete, &MachineConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.mem_errors.is_empty(), "{:?}", r.mem_errors);
        assert_eq!(r.allocs.len(), 8);
        let img = r
            .allocs
            .iter()
            .find(|a| &*a.site == "jpeg_rgb_decoder.c@253")
            .unwrap();
        assert_eq!(
            img.size.value(),
            u128::from(SEED_WIDTH) * u128::from(SEED_HEIGHT) * 4
        );
    }

    #[test]
    fn sof_dimensions_are_the_relevant_bytes() {
        let app = app();
        let r = run(&app.program, &app.seed, Taint, &MachineConfig::default());
        let img = r
            .allocs
            .iter()
            .find(|a| &*a.site == "jpeg_rgb_decoder.c@253")
            .unwrap();
        let h_off = app.format.field("/sof/height").unwrap().offset;
        let w_off = app.format.field("/sof/width").unwrap().offset;
        assert_eq!(img.size_tag.labels(), &[h_off, h_off + 1, w_off, w_off + 1]);
    }

    #[test]
    fn max_dimensions_overflow_and_crash() {
        let app = app();
        let h_off = app.format.field("/sof/height").unwrap().offset;
        let patches: Vec<(u32, u8)> = (0..4).map(|i| (h_off + i, 0xff)).collect();
        let input = app.format.reconstruct(&app.seed, patches);
        let r = run(&app.program, &input, Concrete, &MachineConfig::default());
        // 0xFFFF * 0xFFFF * 4 overflows.
        let img = r
            .allocs
            .iter()
            .find(|a| &*a.site == "jpeg_rgb_decoder.c@253")
            .expect("site executes before any crash");
        assert!(img.size_ovf);
        let coef = r.allocs.iter().find(|a| &*a.site == "jpeg.c@192").unwrap();
        assert!(coef.size_ovf);
        assert!(
            r.outcome.is_segfault()
                || matches!(r.outcome, Outcome::Aborted(_))
                || !r.mem_errors.is_empty(),
            "outcome {:?}",
            r.outcome
        );
    }

    #[test]
    fn all_five_unsat_sites_are_byte_bounded() {
        // The five unsat sites depend only on single bytes / bounded sums;
        // crank every relevant byte to 0xFF and verify no overflow flag.
        let app = app();
        let mut input = app.seed.clone();
        for path in [
            "/app0/thumb_w",
            "/app0/thumb_h",
            "/dqt/prec_id",
            "/sof/ncomp",
            "/sos/ns",
        ] {
            let f = app.format.field(path).unwrap();
            input[f.offset as usize] = 0xff;
        }
        let counts = app.format.field("/dht/counts").unwrap();
        for i in 0..counts.len {
            input[(counts.offset + i) as usize] = 0xff;
        }
        let input = app.format.reconstruct(&input, []);
        let r = run(&app.program, &input, Concrete, &MachineConfig::default());
        for site in [
            "jpeg_marker.c@117",
            "jpeg_quant.c@88",
            "jpeg_huffman.c@140",
            "jpeg.c@305",
            "jpeg_scan.c@77",
        ] {
            if let Some(a) = r.allocs.iter().find(|a| &*a.site == site) {
                assert!(!a.size_ovf, "site {site} unexpectedly overflowed");
            }
        }
    }
}
