//! VLC 0.8.6h — RIFF/WAV demux + audio decode pipeline.
//!
//! All four input-influenced allocation sites are exposed (Table 1's VLC
//! row), with the check structure the paper reports:
//!
//! * `wav.c@147` — **CVE-2008-2430**: the extensible-format header is
//!   allocated as `fmt_len + 2` with *no* size check; the target
//!   constraint `overflow(x + 2)` has exactly two solutions (§5.5). The
//!   program then copies the 18-byte header into the (wrapped,
//!   undersized) block and reads fields back through it — the paper's
//!   non-crashing `InvalidRead/Write` row.
//! * `messages.c@355` — the logging path sizes a message buffer from
//!   sample rate × channel count behind two *ineffective* sanity checks
//!   (§5.2 notes VLC's overflow checks "do not, in fact" protect it).
//! * `block.c@54` — block wrapper allocation `data_len + 64`, unchecked.
//! * `dec.c@277` — decoder output buffer
//!   `samples * channels * (bps/8) + 32` where `samples = data_len /
//!   block_align`, behind five decoder-configuration checks.

use diode_format::{FormatDesc, SeedBuilder};
use diode_lang::parse;

use crate::{App, ExpectedSite};

const PROGRAM: &str = r#"
fn le16at(p) {
    return zext32(in[p]) | zext32(in[p + 1]) << 8;
}

fn le32at(p) {
    return zext32(in[p]) | zext32(in[p + 1]) << 8
         | zext32(in[p + 2]) << 16 | zext32(in[p + 3]) << 24;
}

fn main() {
    // RIFF/WAVE container magic.
    if in[0] != 0x52u8 || in[1] != 0x49u8 || in[2] != 0x46u8 || in[3] != 0x46u8 {
        error("not a RIFF file");
    }
    if in[8] != 0x57u8 || in[9] != 0x41u8 || in[10] != 0x56u8 || in[11] != 0x45u8 {
        error("not a WAVE file");
    }
    if in[12] != 0x66u8 || in[13] != 0x6Du8 || in[14] != 0x74u8 || in[15] != 0x20u8 {
        error("missing fmt chunk");
    }

    // ---- CVE-2008-2430 (wav.c@147): no check on the fmt chunk size ------
    i_size = le32at(16);
    // The demuxer skims the declared chunk (bounded peek): a relevant
    // blocking check on the path to the site — never enforced by DIODE,
    // but it makes the full-seed-path constraint unsatisfiable (§5.4).
    skim = 0;
    while skim < i_size && skim < 40 {
        skim = skim + 1;
    }
    p_wf = alloc("wav.c@147", i_size + 2);

    // Copy the 18-byte WAVEFORMATEX into the (possibly undersized) block.
    k = 0;
    while k < 18 {
        p_wf[zext64(k)] = in[20 + k];
        k = k + 1;
    }

    // Read the format fields back through the allocated header.
    b0 = p_wf[2u64];
    b1 = p_wf[3u64];
    channels = zext32(b0) | zext32(b1) << 8;
    b0 = p_wf[4u64];
    b1 = p_wf[5u64];
    b2 = p_wf[6u64];
    b3 = p_wf[7u64];
    rate = zext32(b0) | zext32(b1) << 8 | zext32(b2) << 16 | zext32(b3) << 24;
    blockalign = le16at(32);
    bps = le16at(34);

    // ---- messages.c@355: log-buffer with two ineffective checks ----------
    if rate > 0x3fffffff {
        error("msg_Dbg: implausible sample rate");
    }
    if channels > 0x3fff {
        error("msg_Dbg: implausible channel count");
    }
    // Per-channel layout formatting (bounded): blocks the full-path
    // constraint for this site without gating the overflow.
    lay = 0;
    while lay < channels && lay < 4096 {
        lay = lay + 1;
    }
    msg_buf = alloc("messages.c@355", (rate * channels >> 3) + 64);
    true_msg = zext64(rate) * zext64(channels) / 8u64 + 64u64;
    p = 0u64;
    while p < 64u64 {
        px = msg_buf[true_msg * p / 64u64];
        p = p + 1u64;
    }

    // ---- data chunk -------------------------------------------------------
    if in[38] != 0x64u8 || in[39] != 0x61u8 || in[40] != 0x74u8 || in[41] != 0x61u8 {
        error("missing data chunk");
    }
    data_len = le32at(42);
    // Peek at the declared sample payload (bounded).
    peek = 0;
    while peek < data_len && peek < 4096 {
        peek = peek + 1;
    }

    // block.c@54: block wrapper, no checks (block_New returns NULL on
    // failure and the demuxer just drops the block).
    blk = alloc("block.c@54", data_len + 64);
    if blk != 0 {
        k = 0;
        while k < 64 {
            blk[zext64(k)] = 0u8;
            k = k + 1;
        }
    }

    // ---- dec.c@277: decoder output buffer behind five checks -------------
    if channels == 0 {
        error("dec: no channels");
    }
    if channels > 512 {
        error("dec: too many channels");
    }
    if bps != 8 && bps != 16 && bps != 24 && bps != 32 {
        error("dec: bad bits per sample");
    }
    if blockalign == 0 {
        error("dec: bad block align");
    }
    if rate == 0 {
        error("dec: bad sample rate");
    }
    samples = data_len / blockalign;
    out = alloc("dec.c@277", samples * channels * (bps >> 3) + 32);
    true_out = zext64(samples) * zext64(channels) * zext64(bps >> 3) + 32u64;
    p = 0u64;
    while p < 64u64 {
        out[true_out * p / 64u64] = 0u8;
        p = p + 1u64;
    }

    free(out);
    if blk != 0 {
        free(blk);
    }
    free(msg_buf);
    free(p_wf);
}
"#;

/// Builds a valid 44.1 kHz stereo 16-bit PCM seed WAV and its field map.
#[must_use]
pub fn seed() -> (Vec<u8>, FormatDesc) {
    let mut b = SeedBuilder::new();
    b.name("riff-wav");
    b.raw(b"RIFF");
    b.le32("/riff/size", 38 + 256);
    b.raw(b"WAVE");
    b.raw(b"fmt ");
    b.le32("/fmt/size", 18);
    b.le16("/fmt/format_tag", 1);
    b.le16("/fmt/channels", 2);
    b.le32("/fmt/sample_rate", 44_100);
    b.le32("/fmt/byte_rate", 44_100 * 4);
    b.le16("/fmt/block_align", 4);
    b.le16("/fmt/bits_per_sample", 16);
    b.le16("/fmt/cb_size", 0);
    b.raw(b"data");
    b.le32("/data/size", 256);
    let payload: Vec<u8> = (0..256).map(|i| (i * 7 % 251) as u8).collect();
    b.named_bytes("/data/samples", &payload);
    b.finish()
}

/// The VLC 0.8.6h benchmark application.
///
/// # Panics
///
/// Panics only if the embedded program fails to parse.
#[must_use]
pub fn app() -> App {
    let program = parse(PROGRAM).expect("vlc program parses");
    let (seed, format) = seed();
    App {
        name: "VLC 0.8.6h",
        program,
        seed,
        format,
        expected: vec![
            ExpectedSite::exposed(
                "messages.c@355",
                None,
                "SIGSEGV/InvalidRead",
                (2, 117),
                (32, 200),
                Some((108, 200)),
            ),
            ExpectedSite::exposed(
                "wav.c@147",
                Some("CVE-2008-2430"),
                "InvalidRead/Write",
                (0, 62),
                (2, 2),
                None,
            ),
            ExpectedSite::exposed(
                "dec.c@277",
                None,
                "SIGSEGV/InvalidRead",
                (5, 291),
                (57, 200),
                Some((97, 200)),
            ),
            ExpectedSite::exposed(
                "block.c@54",
                None,
                "InvalidRead",
                (0, 151),
                (200, 200),
                None,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_interp::{run, Concrete, MachineConfig, Outcome, Taint};

    #[test]
    fn seed_is_processed_cleanly() {
        let app = app();
        let r = run(&app.program, &app.seed, Concrete, &MachineConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.mem_errors.is_empty(), "{:?}", r.mem_errors);
        assert_eq!(r.allocs.len(), 4);
        let wf = r.allocs.iter().find(|a| &*a.site == "wav.c@147").unwrap();
        assert_eq!(wf.size.value(), 20); // 18 + 2
    }

    #[test]
    fn cve_2008_2430_both_solutions_trigger_invalid_accesses() {
        let app = app();
        for x in [0xFFFF_FFFEu32, 0xFFFF_FFFF] {
            let patches = x
                .to_le_bytes()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (16 + i as u32, v));
            let input = app.format.reconstruct(&app.seed, patches);
            let r = run(&app.program, &input, Concrete, &MachineConfig::default());
            let wf = r.allocs.iter().find(|a| &*a.site == "wav.c@147").unwrap();
            assert!(wf.size_ovf, "x + 2 must overflow for {x:#x}");
            assert!(
                wf.size.value() <= 1,
                "wrapped size, got {}",
                wf.size.value()
            );
            // Memcheck-style invalid writes (header copy) and reads (field
            // reads) without a crash — the paper's InvalidRead/Write row.
            assert!(!r.mem_errors.is_empty());
        }
        // Neighbouring value does NOT overflow.
        let patches = 0xFFFF_FFFDu32
            .to_le_bytes()
            .into_iter()
            .enumerate()
            .map(|(i, v)| (16 + i as u32, v));
        let input = app.format.reconstruct(&app.seed, patches);
        let r = run(&app.program, &input, Concrete, &MachineConfig::default());
        let wf = r.allocs.iter().find(|a| &*a.site == "wav.c@147").unwrap();
        assert!(!wf.size_ovf);
    }

    #[test]
    fn taint_tracks_fields_through_the_heap() {
        // rate/channels flow through the p_wf block: the taint labels of
        // the messages.c@355 size must still be the original input bytes.
        let app = app();
        let r = run(&app.program, &app.seed, Taint, &MachineConfig::default());
        let msg = r
            .allocs
            .iter()
            .find(|a| &*a.site == "messages.c@355")
            .unwrap();
        // channels at offsets 22-23, rate at 24-27.
        assert_eq!(msg.size_tag.labels(), &[22, 23, 24, 25, 26, 27]);
        let dec = r.allocs.iter().find(|a| &*a.site == "dec.c@277").unwrap();
        // channels 22..24, block_align 32..34, bps 34..36, data_len 42..46.
        assert_eq!(
            dec.size_tag.labels(),
            &[22, 23, 32, 33, 34, 35, 42, 43, 44, 45]
        );
    }

    #[test]
    fn block_overflow_is_detected_without_crash() {
        let app = app();
        let patches = 0xFFFF_FFF0u32
            .to_le_bytes()
            .into_iter()
            .enumerate()
            .map(|(i, v)| (42 + i as u32, v));
        let input = app.format.reconstruct(&app.seed, patches);
        let r = run(&app.program, &input, Concrete, &MachineConfig::default());
        let blk = r.allocs.iter().find(|a| &*a.site == "block.c@54").unwrap();
        assert!(blk.size_ovf);
        assert!(r.mem_errors.iter().any(|e| &*e.site == "block.c@54"));
    }

    #[test]
    fn messages_overflow_crashes_when_checks_are_evaded() {
        // rate = 0x3000_0000 (passes rate check), channels = 0x2000
        // (passes channel check): product 0x6000_0000_0000 overflows.
        let app = app();
        let mut patches: Vec<(u32, u8)> = Vec::new();
        patches.extend(
            0x3000_0000u32
                .to_le_bytes()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (24 + i as u32, v)),
        );
        patches.extend(
            0x2000u16
                .to_le_bytes()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (22 + i as u32, v)),
        );
        let input = app.format.reconstruct(&app.seed, patches);
        let r = run(&app.program, &input, Concrete, &MachineConfig::default());
        let msg = r
            .allocs
            .iter()
            .find(|a| &*a.site == "messages.c@355")
            .unwrap();
        assert!(msg.size_ovf);
        assert!(r.outcome.is_segfault() || !r.mem_errors.is_empty());
    }
}
