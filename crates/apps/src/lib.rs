//! # diode-apps — the five benchmark applications
//!
//! Re-implementations of the paper's benchmark pipelines (§5.1) in the
//! core language, each packaged with a seed input and a Hachoir-style
//! format description:
//!
//! | App | Input | Target sites | Exposed / Unsat / Prevented |
//! |---|---|---|---|
//! | [`dillo`] 2.1 | mini-PNG | 12 | 3 / 1 / 8 |
//! | [`vlc`] 0.8.6h | RIFF/WAV | 4 | 4 / 0 / 0 |
//! | [`swfplay`] 0.5.5 | SWF + JPEG | 8 | 3 / 5 / 0 |
//! | [`cwebp`] 0.3.1 | JPEG | 7 | 1 / 6 / 0 |
//! | [`imagemagick`] 6.5.2 | XWD | 9 | 3 / 5 / 1 |
//!
//! The pipelines reproduce the *structure* the paper's results depend on —
//! the same allocation-site counts (Table 1), the same sanity checks (e.g.
//! Figure 2's `png_get_uint_31`, `png_check_IHDR` and Dillo's overflowing
//! `abs(w*h)` check) and the same blocking checks (size-dependent loops à
//! la `png_memset`) — while replacing entropy-coding internals with
//! bounded "probe" access loops that touch each allocation across its full
//! logical extent (see DESIGN.md §3 for the substitution argument).
//!
//! ```
//! use diode_interp::{run, Concrete, MachineConfig, Outcome};
//!
//! let app = diode_apps::dillo::app();
//! // Every benchmark seed is processed cleanly (the paper's precondition).
//! let r = run(&app.program, &app.seed, Concrete, &MachineConfig::default());
//! assert_eq!(r.outcome, Outcome::Completed);
//! assert!(r.mem_errors.is_empty());
//! ```

#![warn(missing_docs)]

use diode_format::FormatDesc;
use diode_lang::Program;

pub mod cwebp;
pub mod dillo;
pub mod imagemagick;
pub mod swfplay;
pub mod vlc;

/// The paper's classification of a target site (Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteClass {
    /// DIODE exposes an overflow at the site.
    Exposed,
    /// The target constraint by itself is unsatisfiable.
    Unsat,
    /// Sanity checks prevent any input from overflowing the site.
    Prevented,
}

impl std::fmt::Display for SiteClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SiteClass::Exposed => write!(f, "exposed"),
            SiteClass::Unsat => write!(f, "target-unsat"),
            SiteClass::Prevented => write!(f, "checks-prevent"),
        }
    }
}

/// Ground-truth / paper-reported data about one target site, used by the
/// test suite and by the Table 1/2 harness for paper-vs-measured output.
#[derive(Debug, Clone)]
pub struct ExpectedSite {
    /// Site name as it appears in the program (`file@line`, Table 2 col 2).
    pub site: &'static str,
    /// Expected classification.
    pub class: SiteClass,
    /// CVE number if the paper lists one; `None` ⇒ "New".
    pub cve: Option<&'static str>,
    /// Paper's Error Type column, for side-by-side reporting.
    pub paper_error: Option<&'static str>,
    /// Paper's Enforced Branches column `(enforced, total relevant)`.
    pub paper_enforced: Option<(u32, u32)>,
    /// Paper's Target Success Rate `(hits, samples)`.
    pub paper_target_rate: Option<(u32, u32)>,
    /// Paper's Target+Enforced Success Rate `(hits, samples)`.
    pub paper_enforced_rate: Option<(u32, u32)>,
}

impl ExpectedSite {
    /// A site the paper classifies as exposed.
    #[must_use]
    pub const fn exposed(
        site: &'static str,
        cve: Option<&'static str>,
        paper_error: &'static str,
        paper_enforced: (u32, u32),
        paper_target_rate: (u32, u32),
        paper_enforced_rate: Option<(u32, u32)>,
    ) -> Self {
        ExpectedSite {
            site,
            class: SiteClass::Exposed,
            cve,
            paper_error: Some(paper_error),
            paper_enforced: Some(paper_enforced),
            paper_target_rate: Some(paper_target_rate),
            paper_enforced_rate,
        }
    }

    /// A site whose target constraint is unsatisfiable.
    #[must_use]
    pub const fn unsat(site: &'static str) -> Self {
        ExpectedSite {
            site,
            class: SiteClass::Unsat,
            cve: None,
            paper_error: None,
            paper_enforced: None,
            paper_target_rate: None,
            paper_enforced_rate: None,
        }
    }

    /// A site fully guarded by sanity checks.
    #[must_use]
    pub const fn prevented(site: &'static str) -> Self {
        ExpectedSite {
            site,
            class: SiteClass::Prevented,
            cve: None,
            paper_error: None,
            paper_enforced: None,
            paper_target_rate: None,
            paper_enforced_rate: None,
        }
    }
}

/// A benchmark application: program + seed input + format description +
/// per-site ground truth.
#[derive(Debug)]
pub struct App {
    /// Short name (Table 1 row), e.g. `"Dillo 2.1"`.
    pub name: &'static str,
    /// The application pipeline in the core language.
    pub program: Program,
    /// A seed input the application processes correctly (§5's protocol).
    pub seed: Vec<u8>,
    /// Field map + checksum fixups for the seed's format.
    pub format: FormatDesc,
    /// Ground truth for every target site.
    pub expected: Vec<ExpectedSite>,
}

impl App {
    /// Expected entry for a site name.
    #[must_use]
    pub fn expected_for(&self, site: &str) -> Option<&ExpectedSite> {
        self.expected.iter().find(|e| e.site == site)
    }

    /// Expected Table 1 row: (total, exposed, unsat, prevented).
    #[must_use]
    pub fn expected_counts(&self) -> (usize, usize, usize, usize) {
        let count = |c: SiteClass| self.expected.iter().filter(|e| e.class == c).count();
        (
            self.expected.len(),
            count(SiteClass::Exposed),
            count(SiteClass::Unsat),
            count(SiteClass::Prevented),
        )
    }
}

/// All five benchmark applications, in the paper's Table 1 order.
#[must_use]
pub fn all_apps() -> Vec<App> {
    vec![
        dillo::app(),
        vlc::app(),
        swfplay::app(),
        cwebp::app(),
        imagemagick::app(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_interp::{run, Concrete, MachineConfig, Outcome};

    #[test]
    fn all_five_apps_parse_and_process_their_seeds_cleanly() {
        let apps = all_apps();
        assert_eq!(apps.len(), 5);
        for app in &apps {
            let r = run(&app.program, &app.seed, Concrete, &MachineConfig::default());
            assert_eq!(
                r.outcome,
                Outcome::Completed,
                "{} failed on its seed: {:?} (warnings: {:?})",
                app.name,
                r.outcome,
                r.warnings
            );
            assert!(
                r.mem_errors.is_empty(),
                "{} has memory errors on its seed: {:?}",
                app.name,
                r.mem_errors
            );
        }
    }

    #[test]
    fn expected_counts_match_table_1() {
        type Counts = (usize, usize, usize, usize);
        let rows: Vec<(&str, Counts)> = all_apps()
            .iter()
            .map(|a| (a.name, a.expected_counts()))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("Dillo 2.1", (12, 3, 1, 8)),
                ("VLC 0.8.6h", (4, 4, 0, 0)),
                ("SwfPlay 0.5.5", (8, 3, 5, 0)),
                ("CWebP 0.3.1", (7, 1, 6, 0)),
                ("ImageMagick 6.5.2", (9, 3, 5, 1)),
            ]
        );
        // Paper totals: 40 sites, 14 exposed, 17 unsat, 9 prevented.
        let total: usize = rows.iter().map(|(_, (t, ..))| t).sum();
        let exposed: usize = rows.iter().map(|(_, (_, e, ..))| e).sum();
        let unsat: usize = rows.iter().map(|(_, (_, _, u, _))| u).sum();
        let prevented: usize = rows.iter().map(|(_, (.., p))| p).sum();
        assert_eq!((total, exposed, unsat, prevented), (40, 14, 17, 9));
    }

    #[test]
    fn every_expected_site_exists_in_its_program() {
        for app in all_apps() {
            let sites: Vec<String> = app
                .program
                .alloc_sites()
                .iter()
                .map(|(_, s)| s.to_string())
                .collect();
            for e in &app.expected {
                assert!(
                    sites.iter().any(|s| s == e.site),
                    "{}: expected site {} not in program (has: {sites:?})",
                    app.name,
                    e.site
                );
            }
            assert_eq!(
                sites.len(),
                app.expected.len(),
                "{}: program has {} alloc sites but {} expected entries",
                app.name,
                sites.len(),
                app.expected.len()
            );
        }
    }

    #[test]
    fn all_target_sites_are_exercised_by_seeds() {
        for app in all_apps() {
            let r = run(&app.program, &app.seed, Concrete, &MachineConfig::default());
            let executed: std::collections::HashSet<String> =
                r.allocs.iter().map(|a| a.site.to_string()).collect();
            for e in &app.expected {
                assert!(
                    executed.contains(e.site),
                    "{}: site {} not exercised by seed (executed: {executed:?})",
                    app.name,
                    e.site
                );
            }
        }
    }
}
