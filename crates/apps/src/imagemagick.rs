//! ImageMagick 6.5.2 — XWD (X Window Dump) loader + display pipeline.
//!
//! Table 1's ImageMagick row: 9 target sites — 3 exposed (all with 0
//! enforced branches and near-total success rates, Table 2), 5 with
//! unsatisfiable target constraints, and 1 guarded by a dimension check.
//!
//! * `xwindow.c@5619` (CVE-2009-1882): the XImage pixel store
//!   `width * height * 4`, unchecked.
//! * `cache.c@803`: the pixel cache `bytes_per_line * height + 64`,
//!   unchecked — `bytes_per_line` is its own header field.
//! * `display.c@4393`: the display window
//!   `(width + 2*border) * (height + 2*border)`, unchecked.
//! * `resize.c@2614`: the resize filter buffer `width * 16 + 32`, sized
//!   *after* the loader's `width > 10_000_000` plausibility check — the
//!   row counted under "Sanity Checks Prevent Overflow".

use diode_format::{FormatDesc, SeedBuilder};
use diode_lang::parse;

use crate::{App, ExpectedSite};

/// Seed image geometry.
pub const SEED_WIDTH: u32 = 100;
/// Seed image height.
pub const SEED_HEIGHT: u32 = 80;

const PROGRAM: &str = r#"
fn be32at(p) {
    return zext32(in[p]) << 24 | zext32(in[p + 1]) << 16
         | zext32(in[p + 2]) << 8 | zext32(in[p + 3]);
}

fn main() {
    header_size = be32at(0);
    if header_size < 56 {
        error("ReadXWDImage: header too small");
    }
    file_version = be32at(4);
    if file_version != 7 {
        error("ReadXWDImage: XWD file format version mismatch");
    }
    pixmap_format = be32at(8);
    if pixmap_format > 2 {
        error("ReadXWDImage: unsupported pixmap format");
    }

    width = be32at(16);
    height = be32at(20);
    bytes_per_line = be32at(40);
    border = be32at(52);

    // ---- metadata allocations from byte-width fields (unsat sites) --------
    name_len = in[48];
    cmap_name = alloc("xwd.c@210", zext32(name_len) + 8);
    if cmap_name == 0 { error("oom"); }
    comment_len = in[49];
    comment = alloc("xwd.c@224", zext32(comment_len) * 2 + 4);
    if comment == 0 { error("oom"); }
    channel_count = in[50];
    channel_tab = alloc("xwd.c@241", zext32(channel_count) * 48 + 16);
    if channel_tab == 0 { error("oom"); }
    map_groups = in[51];
    groups = alloc("xwd.c@259", zext32(map_groups) * 8 + 24);
    if groups == 0 { error("oom"); }
    vclass = in[56];
    visual = alloc("xwd.c@277", zext32(vclass) * 4 + 40);
    if visual == 0 { error("oom"); }

    // Scanline/metadata skims (bounded): relevant blocking checks on the
    // paths to the exposed sites. They never reject an input, but they
    // make the full-seed-path constraints unsatisfiable (§5.4).
    s1 = 0;
    while s1 < width && s1 < 4096 { s1 = s1 + 1; }
    s2 = 0;
    while s2 < height && s2 < 4096 { s2 = s2 + 1; }
    s3 = 0;
    while s3 < bytes_per_line && s3 < 4096 { s3 = s3 + 1; }
    s4 = 0;
    while s4 < border && s4 < 4096 { s4 = s4 + 1; }

    // ---- exposed sites: no dimension validation anywhere before ------------
    ximage = alloc("xwindow.c@5619", width * height * 4);
    cache = alloc("cache.c@803", bytes_per_line * height + 64);
    win = alloc("display.c@4393", (width + 2 * border) * (height + 2 * border));

    // Rendering probes across each buffer's full logical extent (the
    // loader renders before the display path validates dimensions).
    true_ximage = zext64(width) * zext64(height) * 4u64;
    p = 0u64;
    while p < 64u64 {
        ximage[true_ximage * p / 64u64] = 0u8;
        p = p + 1u64;
    }
    true_cache = zext64(bytes_per_line) * zext64(height) + 64u64;
    p = 0u64;
    while p < 64u64 {
        cache[true_cache * p / 64u64] = 0u8;
        p = p + 1u64;
    }
    true_win = (zext64(width) + 2u64 * zext64(border))
             * (zext64(height) + 2u64 * zext64(border));
    p = 0u64;
    while p < 64u64 {
        win[true_win * p / 64u64] = 0u8;
        p = p + 1u64;
    }

    // ---- the one guarded site -----------------------------------------------
    if width > 10000000 {
        error("ReadXWDImage: unreasonable image dimensions");
    }
    resize = alloc("resize.c@2614", width * 16 + 32);
    if resize == 0 { error("oom"); }
    true_resize = zext64(width) * 16u64 + 32u64;
    p = 0u64;
    while p < 64u64 {
        resize[true_resize * p / 64u64] = 0u8;
        p = p + 1u64;
    }

    free(resize);
    free(win);
    free(cache);
    free(ximage);
}
"#;

/// Builds a valid seed XWD header (+ tiny payload) and its field map.
#[must_use]
pub fn seed() -> (Vec<u8>, FormatDesc) {
    let mut b = SeedBuilder::new();
    b.name("xwd");
    b.be32("/hdr/header_size", 100);
    b.be32("/hdr/file_version", 7);
    b.be32("/hdr/pixmap_format", 2);
    b.be32("/hdr/pixmap_depth", 24);
    b.be32("/hdr/pixmap_width", SEED_WIDTH);
    b.be32("/hdr/pixmap_height", SEED_HEIGHT);
    b.be32("/hdr/xoffset", 0);
    b.be32("/hdr/byte_order", 0);
    b.be32("/hdr/bitmap_unit", 32);
    b.be32("/hdr/bitmap_bit_order", 0);
    b.be32("/hdr/bytes_per_line", SEED_WIDTH * 4);
    b.be32("/hdr/colormap_entries", 0);
    b.u8("/hdr/name_len", 12);
    b.u8("/hdr/comment_len", 3);
    b.u8("/hdr/channel_count", 3);
    b.u8("/hdr/map_groups", 1);
    b.be32("/hdr/border", 2);
    b.u8("/hdr/visual_class", 4);
    b.raw(&[0u8; 3]); // padding
    let payload: Vec<u8> = (0..240).map(|i| (i * 11 % 251) as u8).collect();
    b.named_bytes("/pixels/data", &payload);
    b.finish()
}

/// The ImageMagick 6.5.2 benchmark application.
///
/// # Panics
///
/// Panics only if the embedded program fails to parse.
#[must_use]
pub fn app() -> App {
    let program = parse(PROGRAM).expect("imagemagick program parses");
    let (seed, format) = seed();
    App {
        name: "ImageMagick 6.5.2",
        program,
        seed,
        format,
        expected: vec![
            ExpectedSite::exposed(
                "xwindow.c@5619",
                Some("CVE-2009-1882"),
                "SIGSEGV/InvalidWrite",
                (0, 2521),
                (200, 200),
                None,
            ),
            ExpectedSite::exposed(
                "cache.c@803",
                None,
                "SIGSEGV/InvalidWrite",
                (0, 306),
                (199, 200),
                None,
            ),
            ExpectedSite::exposed(
                "display.c@4393",
                None,
                "SIGSEGV/InvalidWrite",
                (0, 154),
                (200, 200),
                None,
            ),
            ExpectedSite::prevented("resize.c@2614"),
            ExpectedSite::unsat("xwd.c@210"),
            ExpectedSite::unsat("xwd.c@224"),
            ExpectedSite::unsat("xwd.c@241"),
            ExpectedSite::unsat("xwd.c@259"),
            ExpectedSite::unsat("xwd.c@277"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_interp::{run, Concrete, MachineConfig, Outcome, Taint};

    fn patch_be32(app: &App, path: &str, v: u32) -> Vec<(u32, u8)> {
        let off = app.format.field(path).unwrap().offset;
        v.to_be_bytes()
            .into_iter()
            .enumerate()
            .map(|(i, b)| (off + i as u32, b))
            .collect()
    }

    #[test]
    fn seed_is_processed_cleanly() {
        let app = app();
        let r = run(&app.program, &app.seed, Concrete, &MachineConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.mem_errors.is_empty(), "{:?}", r.mem_errors);
        assert_eq!(r.allocs.len(), 9);
    }

    #[test]
    fn cve_2009_1882_dimensions_trigger() {
        let app = app();
        let mut patches = patch_be32(&app, "/hdr/pixmap_width", 0x0002_0000);
        patches.extend(patch_be32(&app, "/hdr/pixmap_height", 0x0002_0000));
        let input = app.format.reconstruct(&app.seed, patches);
        let r = run(&app.program, &input, Concrete, &MachineConfig::default());
        let x = r
            .allocs
            .iter()
            .find(|a| &*a.site == "xwindow.c@5619")
            .unwrap();
        assert!(x.size_ovf);
        assert!(r.outcome.is_segfault() || !r.mem_errors.is_empty());
    }

    #[test]
    fn cache_overflows_via_bytes_per_line() {
        let app = app();
        let mut patches = patch_be32(&app, "/hdr/bytes_per_line", 0x4000_0000);
        patches.extend(patch_be32(&app, "/hdr/pixmap_height", 8));
        // Keep width small so the other sites stay quiet.
        patches.extend(patch_be32(&app, "/hdr/pixmap_width", 4));
        let input = app.format.reconstruct(&app.seed, patches);
        let r = run(&app.program, &input, Concrete, &MachineConfig::default());
        let x = r
            .allocs
            .iter()
            .find(|a| &*a.site == "xwindow.c@5619")
            .unwrap();
        assert!(!x.size_ovf, "w*h*4 = 128 must not overflow");
        let c = r.allocs.iter().find(|a| &*a.site == "cache.c@803").unwrap();
        assert!(c.size_ovf, "2^30 * 8 overflows");
        assert!(r.outcome.is_segfault() || !r.mem_errors.is_empty());
    }

    #[test]
    fn guarded_resize_site_is_protected_by_the_dimension_check() {
        let app = app();
        // width = 2^28 would overflow width*16, but the check rejects it
        // before the resize allocation.
        let patches = patch_be32(&app, "/hdr/pixmap_width", 1 << 28);
        let input = app.format.reconstruct(&app.seed, patches);
        let r = run(&app.program, &input, Concrete, &MachineConfig::default());
        // The run must have been rejected (or crashed at the earlier
        // exposed probes) without ever executing the resize site.
        assert!(
            r.allocs.iter().all(|a| &*a.site != "resize.c@2614"),
            "resize site must not execute with width 2^28"
        );
    }

    #[test]
    fn relevant_bytes_differ_across_exposed_sites() {
        let app = app();
        let r = run(&app.program, &app.seed, Taint, &MachineConfig::default());
        let by_site = |s: &str| {
            r.allocs
                .iter()
                .find(|a| &*a.site == s)
                .unwrap()
                .size_tag
                .labels()
                .to_vec()
        };
        assert_eq!(
            by_site("xwindow.c@5619"),
            vec![16, 17, 18, 19, 20, 21, 22, 23]
        );
        assert_eq!(by_site("cache.c@803"), vec![20, 21, 22, 23, 40, 41, 42, 43]);
        assert_eq!(
            by_site("display.c@4393"),
            vec![16, 17, 18, 19, 20, 21, 22, 23, 52, 53, 54, 55]
        );
        assert_eq!(by_site("resize.c@2614"), vec![16, 17, 18, 19]);
    }
}
