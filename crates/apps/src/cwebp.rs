//! CWebP 0.3.1 — JPEG import path of the WebP encoder.
//!
//! Table 1's CWebP row: 7 target sites, 1 exposed and 6 unsatisfiable.
//! The exposed site `jpegdec.c@248` sizes the imported RGB buffer
//! `width * height * 3 + width` straight from the SOF dimensions with no
//! validation, *before* any dimension-dependent loop runs — so the full
//! seed-path constraint is satisfiable for it, the second of the paper's
//! two such sites (§5.4), and DIODE needs no branch enforcement at all
//! (Table 2: 0 enforced, 155/200 target-only success).
//!
//! The six unsatisfiable sites size marker-walk metadata from single
//! bytes or bounded sums, so their target expressions provably cannot
//! overflow 32 bits.

use diode_format::{FormatDesc, SeedBuilder};
use diode_lang::parse;

use crate::{App, ExpectedSite};

/// Seed JPEG geometry.
pub const SEED_WIDTH: u16 = 80;
/// Seed JPEG height.
pub const SEED_HEIGHT: u16 = 60;

const PROGRAM: &str = r#"
fn be16at(p) {
    return zext32(in[p]) << 8 | zext32(in[p + 1]);
}

fn main() {
    if in[0] != 0xFFu8 || in[1] != 0xD8u8 {
        error("not a JPEG file");
    }

    // ---- APP0 -----------------------------------------------------------
    if in[2] != 0xFFu8 || in[3] != 0xE0u8 {
        error("missing APP0");
    }
    app0_len = be16at(4);
    if app0_len != 16 {
        error("unexpected APP0 length");
    }
    // Marker bookkeeping (unsat site 1): one byte worth of marker slots.
    marker_count = in[18];
    markers = alloc("jpegdec.c@120", zext32(marker_count) * 16 + 8);
    if markers == 0 { error("oom"); }
    // ICC profile chunks (unsat site 2): sequence number is one byte.
    icc_seq = in[19];
    icc = alloc("jpegdec.c@133", zext32(icc_seq) * 255 + 4);
    if icc == 0 { error("oom"); }

    // ---- DQT --------------------------------------------------------------
    dqt = 20;
    if in[dqt] != 0xFFu8 || in[dqt + 1] != 0xDBu8 {
        error("missing DQT");
    }
    prec_id = in[dqt + 4];
    quant = alloc("jpegdec.c@180", 64 * (zext32(prec_id >> 4u8) + 1) + 2);
    if quant == 0 { error("oom"); }

    // ---- DHT --------------------------------------------------------------
    dht = 89;
    if in[dht] != 0xFFu8 || in[dht + 1] != 0xC4u8 {
        error("missing DHT");
    }
    total = 0;
    c = 0;
    while c < 16 {
        total = total + zext32(in[dht + 5 + c]);
        c = c + 1;
    }
    huff = alloc("jpegdec.c@201", total + 17);
    if huff == 0 { error("oom"); }

    // ---- SOF0: dimensions used with no checks ------------------------------
    sof = 122;
    if in[sof] != 0xFFu8 || in[sof + 1] != 0xC0u8 {
        error("missing SOF0");
    }
    height = be16at(sof + 5);
    width = be16at(sof + 7);
    ncomp = in[sof + 9];

    // The exposed site: imported RGB buffer, allocated before any
    // width/height-dependent branch executes (full-path satisfiable).
    rgb = alloc("jpegdec.c@248", width * height * 3 + width);

    // Encoder configuration (unsat sites 5 and 6).
    quality = in[sof + 10];
    config = alloc("webpenc.c@310", zext32(quality) + 160);
    if config == 0 { error("oom"); }
    pad = in[sof + 11];
    padding = alloc("picture.c@95", zext32(pad) * 4 + 12);
    if padding == 0 { error("oom"); }

    // Import pass probes the RGB buffer across its full logical extent.
    true_rgb = zext64(width) * zext64(height) * 3u64 + zext64(width);
    p = 0u64;
    while p < 64u64 {
        rgb[true_rgb * p / 64u64] = 0u8;
        p = p + 1u64;
    }

    // Downscale pass (width-dependent loop, after the site).
    acc = 0;
    x = 0;
    while x < width && x < 4096 {
        acc = acc + 3;
        x = x + 1;
    }

    free(rgb);
}
"#;

/// Builds a valid seed JPEG for the import path.
#[must_use]
pub fn seed() -> (Vec<u8>, FormatDesc) {
    let mut b = SeedBuilder::new();
    b.name("jpeg");
    b.raw(&[0xFF, 0xD8]); // SOI
    b.raw(&[0xFF, 0xE0]); // APP0 @2
    b.be16("/app0/length", 16);
    b.raw(b"JFIF\0");
    b.raw(&[1, 2, 0]);
    b.be16("/app0/xdensity", 72);
    b.be16("/app0/ydensity", 72);
    b.u8("/app0/marker_count", 2);
    b.u8("/app0/icc_seq", 1);
    // DQT @20.
    b.raw(&[0xFF, 0xDB]);
    b.be16("/dqt/length", 67);
    b.u8("/dqt/prec_id", 0);
    let table: Vec<u8> = (0..64).map(|i| (17 + i) as u8).collect();
    b.named_bytes("/dqt/table", &table);
    // DHT @89.
    b.raw(&[0xFF, 0xC4]);
    b.be16("/dht/length", 31);
    b.u8("/dht/class_id", 0);
    let counts: Vec<u8> = vec![0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0];
    b.named_bytes("/dht/counts", &counts);
    let symbols: Vec<u8> = (0..12).collect();
    b.named_bytes("/dht/symbols", &symbols);
    // SOF0 @122.
    b.raw(&[0xFF, 0xC0]);
    b.be16("/sof/length", 13);
    b.u8("/sof/precision", 8);
    b.be16("/sof/height", SEED_HEIGHT);
    b.be16("/sof/width", SEED_WIDTH);
    b.u8("/sof/ncomp", 3);
    b.u8("/sof/quality", 75);
    b.u8("/sof/pad", 1);
    b.raw(&[0xFF, 0xD9]); // EOI
    b.finish()
}

/// The CWebP 0.3.1 benchmark application.
///
/// # Panics
///
/// Panics only if the embedded program fails to parse.
#[must_use]
pub fn app() -> App {
    let program = parse(PROGRAM).expect("cwebp program parses");
    let (seed, format) = seed();
    App {
        name: "CWebP 0.3.1",
        program,
        seed,
        format,
        expected: vec![
            ExpectedSite::exposed(
                "jpegdec.c@248",
                None,
                "SIGSEGV/InvalidWrite",
                (0, 651),
                (155, 200),
                None,
            ),
            ExpectedSite::unsat("jpegdec.c@120"),
            ExpectedSite::unsat("jpegdec.c@133"),
            ExpectedSite::unsat("jpegdec.c@180"),
            ExpectedSite::unsat("jpegdec.c@201"),
            ExpectedSite::unsat("webpenc.c@310"),
            ExpectedSite::unsat("picture.c@95"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_interp::{run, Concrete, MachineConfig, Outcome, Taint};

    #[test]
    fn seed_is_processed_cleanly() {
        let app = app();
        let r = run(&app.program, &app.seed, Concrete, &MachineConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.mem_errors.is_empty(), "{:?}", r.mem_errors);
        assert_eq!(r.allocs.len(), 7);
        let rgb = r
            .allocs
            .iter()
            .find(|a| &*a.site == "jpegdec.c@248")
            .unwrap();
        assert_eq!(
            rgb.size.value(),
            u128::from(SEED_WIDTH) * u128::from(SEED_HEIGHT) * 3 + u128::from(SEED_WIDTH)
        );
    }

    #[test]
    fn exposed_site_depends_only_on_sof_dimensions() {
        let app = app();
        let r = run(&app.program, &app.seed, Taint, &MachineConfig::default());
        let rgb = r
            .allocs
            .iter()
            .find(|a| &*a.site == "jpegdec.c@248")
            .unwrap();
        let h = app.format.field("/sof/height").unwrap().offset;
        let w = app.format.field("/sof/width").unwrap().offset;
        assert_eq!(rgb.size_tag.labels(), &[h, h + 1, w, w + 1]);
    }

    #[test]
    fn no_relevant_branch_precedes_the_exposed_site() {
        // The defining property of this §5.4 site: along the seed path, no
        // conditional branch before the allocation is influenced by the
        // SOF width/height bytes.
        let app = app();
        let r = run(
            &app.program,
            &app.seed,
            diode_interp::Symbolic::all_bytes(),
            &MachineConfig::default(),
        );
        let rgb = r
            .allocs
            .iter()
            .find(|a| &*a.site == "jpegdec.c@248")
            .unwrap();
        let h = app.format.field("/sof/height").unwrap().offset;
        let relevant = [h, h + 1, h + 2, h + 3];
        for obs in &r.branches[..rgb.branches_before] {
            if let Some(c) = &obs.constraint {
                assert!(
                    !c.intersects_bytes(&relevant),
                    "relevant branch before the site: {c}"
                );
            }
        }
    }

    #[test]
    fn oversized_dimensions_trigger() {
        let app = app();
        let h = app.format.field("/sof/height").unwrap().offset;
        let patches: Vec<(u32, u8)> = (0..4).map(|i| (h + i, 0xf0)).collect();
        let input = app.format.reconstruct(&app.seed, patches);
        let r = run(&app.program, &input, Concrete, &MachineConfig::default());
        let rgb = r
            .allocs
            .iter()
            .find(|a| &*a.site == "jpegdec.c@248")
            .unwrap();
        assert!(rgb.size_ovf);
        assert!(r.outcome.is_segfault() || !r.mem_errors.is_empty());
    }
}
