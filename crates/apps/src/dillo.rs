//! Dillo 2.1 + libpng — the paper's running example (Figure 2, §2).
//!
//! A mini-PNG pipeline with the exact check structure the paper describes:
//!
//! * **Checks 1–2**: `png_get_uint_31` rejects width/height ≥ 2³¹ (also
//!   applied to every chunk length, as in libpng's chunk-header read);
//! * **Checks 3–4**: `png_check_IHDR` rejects width/height > 1 000 000;
//! * bit-depth / colour-type / compression validity checks;
//! * **Check 5**: Dillo's `abs(width*height) > 6000*6000` image-size check
//!   — itself vulnerable to overflow, which is what lets carefully chosen
//!   inputs through (§2's final enforcement step);
//! * the **`png_memset` blocking loop** over `rowbytes + 1` (SSE2-style
//!   16-byte stride plus a byte tail), whose iteration count depends on
//!   the relevant inputs — enforcing it would pin `rowbytes` and make the
//!   overflow unreachable (§2 "Blocking Checks").
//!
//! Twelve input-influenced allocation sites match Table 1's Dillo row:
//! 3 exposed (`png.c@203`, `fltkimagebuf.cc@39`, `Image.cxx@741`),
//! 1 with an unsatisfiable target constraint (`png.c@421`, palette:
//! one byte × 3), and 8 fully guarded by the checks above.

use diode_format::{png_chunk, FormatDesc, SeedBuilder};
use diode_lang::parse;

use crate::{App, ExpectedSite};

/// Seed image geometry (processed cleanly: 64×48, 8-bit grayscale).
pub const SEED_WIDTH: u32 = 64;
/// Seed image height.
pub const SEED_HEIGHT: u32 = 48;
/// Seed bit depth.
pub const SEED_BIT_DEPTH: u8 = 8;

const PROGRAM: &str = r#"
// ---- libpng helpers -------------------------------------------------------

fn be32at(p) {
    return zext32(in[p]) << 24 | zext32(in[p + 1]) << 16
         | zext32(in[p + 2]) << 8 | zext32(in[p + 3]);
}

// Checks 1 & 2 (Figure 2, png_get_uint_31): values must fit in 31 bits.
fn png_get_uint_31(p) {
    v = be32at(p);
    if v > 0x7fffffff {
        error("PNG unsigned integer out of range");
    }
    return v;
}

fn main() {
    // PNG signature.
    if in[0] != 0x89u8 || in[1] != 0x50u8 || in[2] != 0x4Eu8 || in[3] != 0x47u8 {
        error("not a PNG file");
    }
    if in[4] != 0x0Du8 || in[5] != 0x0Au8 || in[6] != 0x1Au8 || in[7] != 0x0Au8 {
        error("corrupt PNG signature");
    }

    // ---- IHDR (always the first chunk) ------------------------------------
    ihdr_len = png_get_uint_31(8);
    if ihdr_len != 13 {
        error("png_handle_IHDR: bad IHDR length");
    }
    if in[12] != 0x49u8 || in[13] != 0x48u8 || in[14] != 0x44u8 || in[15] != 0x52u8 {
        error("first chunk is not IHDR");
    }
    if !crc32_ok(12, ihdr_len + 4, 16 + ihdr_len) {
        error("IHDR CRC mismatch");
    }

    width = png_get_uint_31(16);
    height = png_get_uint_31(20);
    bit_depth = zext32(in[24]);
    color_type = zext32(in[25]);
    compression = in[26];

    // png_check_IHDR (Figure 2 checks 3 & 4 + validity).
    err = 0;
    if height > 1000000 {
        warn("Image height exceeds user limit in IHDR");
        err = 1;
    }
    if width > 1000000 {
        warn("Image width exceeds user limit in IHDR");
        err = 1;
    }
    if bit_depth != 1 && bit_depth != 2 && bit_depth != 4 && bit_depth != 8 && bit_depth != 16 {
        warn("Invalid bit depth in IHDR");
        err = 1;
    }
    if color_type != 0 && color_type != 2 && color_type != 3 && color_type != 6 {
        warn("Invalid color type in IHDR");
        err = 1;
    }
    if compression != 0u8 {
        warn("Unknown compression method in IHDR");
        err = 1;
    }
    if err != 0 {
        error("png_handle_IHDR: invalid IHDR data");
    }

    // Dillo asks libpng to expand every image to RGBA, so the pixel
    // depth is 4 * bit_depth — exactly the paper's extracted expression
    // ((width * (4 * bitdepth)) >> 3) * height.
    channels = 4;
    pixel_depth = bit_depth * channels;

    // PNG_ROWBYTES (Figure 2).
    if pixel_depth >= 8 {
        rowbytes = width * (pixel_depth >> 3);
    } else {
        rowbytes = (width * pixel_depth + 7) >> 3;
    }

    // ---- png_read_start_row: row buffers (guarded sites) ------------------
    row_buf = alloc("png.c@178", rowbytes + 8);
    if row_buf == 0 { error("png_read_start_row: out of memory"); }
    prev_row = alloc("pngrutil.c@3141", rowbytes + 1);
    if prev_row == 0 { error("png_read_start_row: out of memory"); }

    // png_memset over the previous-row buffer: the hand-coded SSE2 loop of
    // §2 — 16-byte stride plus byte tail. This is the blocking check.
    i = 0;
    while i + 16 <= rowbytes + 1 {
        prev_row[zext64(i)] = 0u8;
        i = i + 16;
    }
    while i < rowbytes + 1 {
        prev_row[zext64(i)] = 0u8;
        i = i + 1;
    }

    // Gamma / transform buffers (guarded sites).
    gamma_table = alloc("pngread.c@985", 256 << (bit_depth >> 3));
    if gamma_table == 0 { error("png_build_gamma_table: out of memory"); }
    expand_buf = alloc("pngrtran.c@1501", rowbytes * 2);
    if expand_buf == 0 { error("png_do_expand: out of memory"); }
    line_buf = alloc("png.c@512", width * 3 + 2);
    if line_buf == 0 { error("Png_line: out of memory"); }
    dcache = alloc("dicache.c@345", width + 128);
    if dcache == 0 { error("a_Dicache_add_entry: out of memory"); }

    // ---- chunk walk --------------------------------------------------------
    pos = 33;
    idat_seen = 0;
    while pos + 12 <= inlen {
        clen = png_get_uint_31(pos);
        t0 = in[pos + 4];
        t1 = in[pos + 5];
        t2 = in[pos + 6];
        t3 = in[pos + 7];
        if !crc32_ok(pos + 4, clen + 4, pos + 8 + clen) {
            error("chunk CRC mismatch");
        }

        // PLTE ---------------------------------------------------------------
        if t0 == 0x50u8 && t1 == 0x4Cu8 && t2 == 0x54u8 && t3 == 0x45u8 {
            plte_data = alloc("pngrutil.c@2700", clen + 4);
            if plte_data == 0 { error("png_handle_PLTE: out of memory"); }
            n_colors = in[pos + 8];
            palette = alloc("png.c@421", zext32(n_colors) * 3);
            if palette == 0 { error("png_set_PLTE: out of memory"); }
            j = 0;
            while j < zext32(n_colors) * 3 && j + 1 < clen {
                palette[zext64(j)] = in[pos + 9 + j];
                j = j + 1;
            }
        }

        // tEXt ---------------------------------------------------------------
        if t0 == 0x74u8 && t1 == 0x45u8 && t2 == 0x58u8 && t3 == 0x74u8 {
            text_buf = alloc("pngrutil.c@430", clen + 1);
            if text_buf == 0 { error("png_handle_tEXt: out of memory"); }
            k = 0;
            while k < clen && k < 256 {
                text_buf[zext64(k)] = in[pos + 8 + k];
                k = k + 1;
            }
        }

        // IDAT: Png_datainfo_callback (Figure 2) ------------------------------
        if t0 == 0x49u8 && t1 == 0x44u8 && t2 == 0x41u8 && t3 == 0x54u8 {
            if idat_seen == 0 {
                idat_seen = 1;

                // Check 5: Dillo's (overflowable) maximum-image-size check.
                sprod = width * height;
                if slt(sprod, 0) {
                    sprod = 0 - sprod;
                }
                if sprod > 36000000 {
                    warn("suspicious image size request");
                } else {
                    // The Figure 2 overflow site: rowbytes * height.
                    image_data = alloc("png.c@203", rowbytes * height);

                    // Copy whatever raw scanline data the file carries
                    // (entropy decode elided; bounded by the available
                    // payload).
                    r = 0;
                    src = pos + 8;
                    while r < height && src + rowbytes <= pos + 8 + clen {
                        c = 0;
                        while c < rowbytes {
                            image_data[zext64(r) * zext64(rowbytes) + zext64(c)] = in[src + c];
                            c = c + 1;
                        }
                        src = src + rowbytes;
                        r = r + 1;
                    }

                    // Dillo/FLTK scale buffer (exposed) and row index
                    // (exposed).
                    scale_buf = alloc("fltkimagebuf.cc@39", width * height * channels + 64);
                    rows = alloc("Image.cxx@741", height * (rowbytes + 4));

                    // Progressive render: sample a 64-point thumbnail
                    // across the image's full logical extent (reads).
                    true_img = zext64(rowbytes) * zext64(height);
                    p = 0u64;
                    while p < 64u64 {
                        px = image_data[true_img * p / 64u64];
                        p = p + 1u64;
                    }
                    // Scale pass writes across the scale buffer's extent.
                    true_scale = zext64(width) * zext64(height) * zext64(channels) + 64u64;
                    p = 0u64;
                    while p < 64u64 {
                        scale_buf[true_scale * p / 64u64] = 0u8;
                        p = p + 1u64;
                    }
                    // Row-pointer setup touches each sampled row slot.
                    true_rows = zext64(height) * (zext64(rowbytes) + 4u64);
                    p = 0u64;
                    while p < 64u64 {
                        rows[true_rows * p / 64u64] = 0u8;
                        p = p + 1u64;
                    }
                }
            }
        }

        pos = pos + 12 + clen;
    }

    if idat_seen == 0 {
        error("no IDAT chunk");
    }
}
"#;

/// Builds the seed input (a valid 64×48 grayscale mini-PNG with PLTE,
/// tEXt and IDAT chunks) and its field map.
#[must_use]
pub fn seed() -> (Vec<u8>, FormatDesc) {
    let mut b = SeedBuilder::new();
    b.name("mini-png");
    b.raw(&[0x89, b'P', b'N', b'G', 0x0d, 0x0a, 0x1a, 0x0a]);
    png_chunk(&mut b, "/ihdr", b"IHDR", |b| {
        b.be32("/ihdr/width", SEED_WIDTH);
        b.be32("/ihdr/height", SEED_HEIGHT);
        b.u8("/ihdr/bit_depth", SEED_BIT_DEPTH);
        b.u8("/ihdr/color_type", 0);
        b.u8("/ihdr/compression", 0);
        b.u8("/ihdr/filter", 0);
        b.u8("/ihdr/interlace", 0);
    });
    png_chunk(&mut b, "/plte", b"PLTE", |b| {
        b.u8("/plte/n_colors", 5);
        let colors: Vec<u8> = (0..15).map(|i| (i * 16) as u8).collect();
        b.named_bytes("/plte/colors", &colors);
    });
    png_chunk(&mut b, "/text", b"tEXt", |b| {
        b.named_bytes("/text/keyword", b"Title\0mini");
    });
    png_chunk(&mut b, "/idat", b"IDAT", |b| {
        let rowbytes = SEED_WIDTH * u32::from(SEED_BIT_DEPTH) / 8;
        let data: Vec<u8> = (0..rowbytes * SEED_HEIGHT)
            .map(|i| (i % 251) as u8)
            .collect();
        b.named_bytes("/idat/data", &data);
    });
    png_chunk(&mut b, "/iend", b"IEND", |_| {});
    b.finish()
}

/// The Dillo 2.1 benchmark application.
///
/// # Panics
///
/// Panics only if the embedded program fails to parse (a build-time bug,
/// covered by tests).
#[must_use]
pub fn app() -> App {
    let program = parse(PROGRAM).expect("dillo program parses");
    let (seed, format) = seed();
    App {
        name: "Dillo 2.1",
        program,
        seed,
        format,
        expected: vec![
            ExpectedSite::exposed(
                "png.c@203",
                Some("CVE-2009-2294"),
                "SIGSEGV/InvalidRead",
                (4, 35),
                (0, 200),
                Some((190, 200)),
            ),
            ExpectedSite::exposed(
                "fltkimagebuf.cc@39",
                None,
                "SIGSEGV/InvalidRead",
                (5, 69),
                (0, 200),
                Some((189, 200)),
            ),
            ExpectedSite::exposed(
                "Image.cxx@741",
                None,
                "SIGSEGV/InvalidRead",
                (4, 5779),
                (0, 200),
                Some((190, 200)),
            ),
            ExpectedSite::unsat("png.c@421"),
            ExpectedSite::prevented("png.c@178"),
            ExpectedSite::prevented("pngrutil.c@3141"),
            ExpectedSite::prevented("pngread.c@985"),
            ExpectedSite::prevented("pngrtran.c@1501"),
            ExpectedSite::prevented("png.c@512"),
            ExpectedSite::prevented("dicache.c@345"),
            ExpectedSite::prevented("pngrutil.c@2700"),
            ExpectedSite::prevented("pngrutil.c@430"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diode_interp::{run, Concrete, MachineConfig, Outcome, Symbolic, Taint};

    #[test]
    fn seed_is_processed_cleanly() {
        let app = app();
        let r = run(&app.program, &app.seed, Concrete, &MachineConfig::default());
        assert_eq!(r.outcome, Outcome::Completed, "warnings: {:?}", r.warnings);
        assert!(r.mem_errors.is_empty(), "{:?}", r.mem_errors);
        // All 12 sites exercised.
        let sites: std::collections::HashSet<_> =
            r.allocs.iter().map(|a| a.site.to_string()).collect();
        assert_eq!(sites.len(), 12);
        // Figure-2 arithmetic: rowbytes = 64, image = rowbytes*height.
        let img = r.allocs.iter().find(|a| &*a.site == "png.c@203").unwrap();
        // rowbytes = width * 4 (RGBA expansion at bit depth 8).
        assert_eq!(img.size.value(), u128::from(SEED_WIDTH * 4 * SEED_HEIGHT));
        assert!(!img.size_ovf);
    }

    #[test]
    fn taint_finds_relevant_bytes_of_figure2_site() {
        let app = app();
        let r = run(&app.program, &app.seed, Taint, &MachineConfig::default());
        let img = r.allocs.iter().find(|a| &*a.site == "png.c@203").unwrap();
        // width bytes 16..20, height bytes 20..24, bit_depth byte 24 —
        // exactly the paper's "relevant input bytes" for this site.
        assert_eq!(img.size_tag.labels(), &[16, 17, 18, 19, 20, 21, 22, 23, 24]);
        // The palette site depends only on its count byte.
        let pal = r.allocs.iter().find(|a| &*a.site == "png.c@421").unwrap();
        let plte_count_off = app.format.field("/plte/n_colors").unwrap().offset;
        assert_eq!(pal.size_tag.labels(), &[plte_count_off]);
    }

    #[test]
    fn corrupt_crc_is_rejected() {
        let app = app();
        let mut bad = app.seed.clone();
        bad[17] ^= 0x01; // width byte without CRC repair
        let r = run(&app.program, &bad, Concrete, &MachineConfig::default());
        assert_eq!(
            r.outcome,
            Outcome::InputRejected("IHDR CRC mismatch".into())
        );
    }

    #[test]
    fn reconstructed_patch_passes_crc_and_reaches_checks() {
        let app = app();
        // Patch width to 2_000_000 (fails check 4) via the reconstructor.
        let patches = 2_000_000u32
            .to_be_bytes()
            .into_iter()
            .enumerate()
            .map(|(i, v)| (16 + i as u32, v));
        let input = app.format.reconstruct(&app.seed, patches);
        let r = run(&app.program, &input, Concrete, &MachineConfig::default());
        assert_eq!(
            r.outcome,
            Outcome::InputRejected("png_handle_IHDR: invalid IHDR data".into())
        );
        assert!(r
            .warnings
            .iter()
            .any(|w| w.contains("width exceeds user limit")));
    }

    #[test]
    fn paper_section2_solution_triggers_the_overflow() {
        // §2's final enforcement result: width 689853, height 915210,
        // bit_depth 4 — passes every sanity check (including overflowing
        // Dillo's own size check) and overflows rowbytes*height.
        let app = app();
        let mut patches: Vec<(u32, u8)> = Vec::new();
        patches.extend(
            689_853u32
                .to_be_bytes()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (16 + i as u32, v)),
        );
        patches.extend(
            915_210u32
                .to_be_bytes()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (20 + i as u32, v)),
        );
        patches.push((24, 4));
        let input = app.format.reconstruct(&app.seed, patches);
        let r = run(&app.program, &input, Concrete, &MachineConfig::default());
        // The overflow is triggered at the Figure 2 site...
        let img = r.allocs.iter().find(|a| &*a.site == "png.c@203").unwrap();
        assert!(img.size_ovf, "size computation must overflow");
        // ...and the resulting error is detected (crash or memcheck-style
        // report), exactly like the paper's SIGSEGV.
        assert!(
            r.outcome.is_segfault() || !r.mem_errors.is_empty(),
            "outcome: {:?}",
            r.outcome
        );
    }

    #[test]
    fn symbolic_stage_records_figure2_target_expression() {
        let app = app();
        let taint = run(&app.program, &app.seed, Taint, &MachineConfig::default());
        let img = taint
            .allocs
            .iter()
            .find(|a| &*a.site == "png.c@203")
            .unwrap();
        let relevant: Vec<u32> = img.size_tag.labels().to_vec();
        let sym = run(
            &app.program,
            &app.seed,
            Symbolic::relevant_bytes(relevant),
            &MachineConfig::default(),
        );
        let rec = sym.allocs.iter().find(|a| &*a.site == "png.c@203").unwrap();
        let expr = rec.size_tag.as_ref().expect("symbolic target expression");
        // The expression reproduces the concrete seed size...
        let seed_bytes = app.seed.clone();
        let lookup = |o: u32| seed_bytes.get(o as usize).copied().unwrap_or(0);
        assert_eq!(
            expr.eval(&lookup).value(),
            u128::from(SEED_WIDTH * 4 * SEED_HEIGHT)
        );
        // ...and evaluating it on §2's solution overflows.
        let mut solved = seed_bytes.clone();
        solved[16..20].copy_from_slice(&689_853u32.to_be_bytes());
        solved[20..24].copy_from_slice(&915_210u32.to_be_bytes());
        solved[24] = 4;
        let lookup2 = move |o: u32| solved.get(o as usize).copied().unwrap_or(0);
        // NOTE: the recorded expression follows the seed's path (bit
        // depth 8 ⇒ the `pixel_depth >= 8` arm). Under the §2 input the
        // *seed-path* expression still overflows:
        let (_, ovf) = expr.eval_overflow(&lookup2);
        assert!(ovf);
    }

    #[test]
    fn branch_trace_contains_sanity_and_blocking_checks() {
        let app = app();
        let r = run(
            &app.program,
            &app.seed,
            Symbolic::all_bytes(),
            &MachineConfig::default(),
        );
        // The memset loop contributes many observations of one label
        // (blocking check), tainted by width/bit-depth bytes.
        let tainted: Vec<_> = r
            .branches
            .iter()
            .filter(|b| b.constraint.is_some())
            .collect();
        assert!(
            tainted.len() > 20,
            "expected many tainted branch observations, got {}",
            tainted.len()
        );
        let img = r.allocs.iter().find(|a| &*a.site == "png.c@203").unwrap();
        assert!(img.branches_before > 0);
    }
}
