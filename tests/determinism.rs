//! Reproducibility guarantees: the whole pipeline is deterministic for a
//! fixed configuration — two analyses of the same app agree on every
//! classification, enforcement count, and triggering input — and the
//! success-rate experiments are deterministic per RNG seed.

use diode::apps::all_apps;
use diode::core::{analyze_program, success_rate, DiodeConfig, SiteOutcome};

fn outcome_fingerprint(o: &SiteOutcome) -> String {
    match o {
        SiteOutcome::Exposed(b) => format!("exposed:{}:{:02x?}", b.enforced, b.input),
        SiteOutcome::TargetUnsat => "unsat".into(),
        SiteOutcome::Prevented(r) => format!("prevented:{r:?}"),
        SiteOutcome::Unknown => "unknown".into(),
    }
}

#[test]
fn analysis_is_deterministic() {
    let config = DiodeConfig::default();
    for app in all_apps() {
        let a = analyze_program(&app.program, &app.seed, &app.format, &config);
        let b = analyze_program(&app.program, &app.seed, &app.format, &config);
        assert_eq!(a.sites.len(), b.sites.len());
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.site, y.site);
            assert_eq!(
                outcome_fingerprint(&x.outcome),
                outcome_fingerprint(&y.outcome),
                "{}: {} diverged between runs",
                app.name,
                x.site
            );
            assert_eq!(x.total_relevant, y.total_relevant);
            assert_eq!(x.phi_len, y.phi_len);
        }
    }
}

#[test]
fn success_rates_are_deterministic_per_seed() {
    let app = diode::apps::vlc::app();
    let config = DiodeConfig::default();
    let analysis = analyze_program(&app.program, &app.seed, &app.format, &config);
    let report = analysis.site("block.c@54").unwrap();
    let beta = &report.extraction.as_ref().unwrap().beta;
    let r1 = success_rate(
        &app.program,
        &app.seed,
        &app.format,
        report.label,
        beta,
        10,
        1234,
        &config,
    );
    let r2 = success_rate(
        &app.program,
        &app.seed,
        &app.format,
        report.label,
        beta,
        10,
        1234,
        &config,
    );
    assert_eq!(r1, r2);
    // A different seed may differ (diverse sampling), but stays valid.
    let r3 = success_rate(
        &app.program,
        &app.seed,
        &app.format,
        report.label,
        beta,
        10,
        4321,
        &config,
    );
    assert_eq!(r3.samples, 10);
}
