//! §6's comparison claims as tests: on the sanity-checked Dillo site,
//! neither random nor taint-directed fuzzing finds the overflow in 100
//! trials, while DIODE does; on check-free sites, the directed fuzzer can
//! get lucky — the difference is precisely the sanity checks.

use diode::apps::{all_apps, dillo};
use diode::core::{analyze_site, identify_target_sites, DiodeConfig, SiteOutcome};
use diode::fuzz::{RandomFuzzer, TaintFuzzer};

#[test]
fn fuzzers_fail_where_diode_succeeds() {
    let app = dillo::app();
    let config = DiodeConfig::default();
    let sites = identify_target_sites(&app.program, &app.seed, &config.machine);
    let fig2 = sites.iter().find(|s| &*s.site == "png.c@203").unwrap();

    let random = RandomFuzzer {
        trials: 100,
        ..RandomFuzzer::default()
    }
    .run(
        &app.program,
        &app.seed,
        &app.format,
        fig2.label,
        &config.machine,
    );
    assert_eq!(
        random.hits, 0,
        "random fuzzing should not navigate 5 checks"
    );

    let taint = TaintFuzzer {
        trials: 100,
        ..TaintFuzzer::default()
    }
    .run(
        &app.program,
        &app.seed,
        &app.format,
        fig2.label,
        &fig2.relevant_bytes,
        &config.machine,
    );
    assert_eq!(
        taint.hits, 0,
        "taint-directed fuzzing should not navigate 5 checks"
    );

    let report = analyze_site(&app.program, &app.seed, &app.format, fig2, &config);
    assert!(matches!(report.outcome, SiteOutcome::Exposed(_)));
}

#[test]
fn every_app_has_a_diode_only_site_or_an_easy_site() {
    // Sanity check across the suite: DIODE exposes every paper-exposed
    // site; the taint fuzzer is competitive only on check-free ones.
    let config = DiodeConfig::default();
    for app in all_apps() {
        let sites = identify_target_sites(&app.program, &app.seed, &config.machine);
        for site in &sites {
            let Some(expected) = app.expected_for(&site.site) else {
                continue;
            };
            if expected.class != diode::apps::SiteClass::Exposed {
                continue;
            }
            let report = analyze_site(&app.program, &app.seed, &app.format, site, &config);
            assert!(
                matches!(report.outcome, SiteOutcome::Exposed(_)),
                "{}: {} must be exposed",
                app.name,
                site.site
            );
        }
    }
}
