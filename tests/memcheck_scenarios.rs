//! Memcheck-fidelity scenarios (§4.6): the simulated heap must report the
//! same classes of errors Valgrind's memcheck reports in Table 2 — invalid
//! reads/writes near a block, segfaults on wild/null accesses, aborts —
//! and stay silent on correct executions.

use diode::interp::{run, Concrete, MachineConfig, MemErrorKind, Outcome};
use diode::lang::parse;

fn exec(src: &str, input: &[u8]) -> diode::interp::Run<(), ()> {
    run(
        &parse(src).unwrap(),
        input,
        Concrete,
        &MachineConfig::default(),
    )
}

#[test]
fn clean_program_reports_nothing() {
    let r = exec(
        r#"fn main() {
            b = alloc("ok@1", 32);
            i = 0;
            while i < 32 { b[zext64(i)] = trunc8(i); i = i + 1; }
            x = b[31u64];
            free(b);
        }"#,
        &[],
    );
    assert_eq!(r.outcome, Outcome::Completed);
    assert!(r.mem_errors.is_empty());
}

#[test]
fn one_past_the_end_is_an_invalid_write_not_a_crash() {
    let r = exec(
        r#"fn main() {
            b = alloc("off-by-one@1", 8);
            i = 0;
            while i <= 8 { b[zext64(i)] = 0u8; i = i + 1; }
        }"#,
        &[],
    );
    assert_eq!(r.outcome, Outcome::Completed);
    assert_eq!(r.mem_errors.len(), 1);
    assert_eq!(r.mem_errors[0].kind, MemErrorKind::InvalidWrite);
    assert_eq!(r.mem_errors[0].offset, 8);
    assert_eq!(r.mem_errors[0].block_size, 8);
}

#[test]
fn reads_in_the_red_zone_report_and_return_zero() {
    let r = exec(
        r#"fn main() {
            b = alloc("rz@1", 4);
            x = b[100u64];
            if x != 0u8 { abort("red zone must read as zero"); }
        }"#,
        &[],
    );
    assert_eq!(r.outcome, Outcome::Completed);
    assert_eq!(r.mem_errors[0].kind, MemErrorKind::InvalidRead);
}

#[test]
fn wild_accesses_and_null_derefs_segfault() {
    let r = exec(
        r#"fn main() { b = alloc("w@1", 4); x = b[1000000u64]; }"#,
        &[],
    );
    assert!(r.outcome.is_segfault());
    let r = exec(
        r#"fn main() { b = alloc("n@1", 0xFFFFFFFF); x = b[0u64]; }"#,
        &[],
    );
    assert!(r.outcome.is_segfault(), "null deref after failed alloc");
}

#[test]
fn use_after_free_and_double_free_are_reported() {
    let r = exec(
        r#"fn main() {
            b = alloc("uaf@1", 4);
            free(b);
            b[0] = 1u8;
            x = b[0];
            free(b);
        }"#,
        &[],
    );
    assert_eq!(r.outcome, Outcome::Completed);
    let kinds: Vec<_> = r.mem_errors.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            MemErrorKind::UseAfterFreeWrite,
            MemErrorKind::UseAfterFreeRead,
            MemErrorKind::DoubleFree
        ]
    );
}

#[test]
fn error_sites_name_the_allocation_site() {
    let r = exec(
        r#"fn main() {
            b = alloc("named.c@99", 2);
            b[5u64] = 1u8;
        }"#,
        &[],
    );
    assert_eq!(&*r.mem_errors[0].site, "named.c@99");
}

#[test]
fn table2_invalid_readwrite_pattern_reproduces() {
    // The CVE-2008-2430 access pattern: a wrapped tiny allocation written
    // and read past its end, within the red zone — errors, no crash.
    let r = exec(
        r#"fn main() {
            n = zext32(in[0]) << 24 | zext32(in[1]) << 16
              | zext32(in[2]) << 8 | zext32(in[3]);
            b = alloc("cve@4", n + 2);
            k = 0;
            while k < 18 { b[zext64(k)] = 0u8; k = k + 1; }
            x = b[4u64];
        }"#,
        &[0xff, 0xff, 0xff, 0xff], // n + 2 wraps to 1
    );
    assert_eq!(r.outcome, Outcome::Completed);
    assert!(r.allocs[0].size_ovf);
    assert_eq!(r.allocs[0].size.value(), 1);
    let has_write = r
        .mem_errors
        .iter()
        .any(|e| e.kind == MemErrorKind::InvalidWrite);
    let has_read = r
        .mem_errors
        .iter()
        .any(|e| e.kind == MemErrorKind::InvalidRead);
    assert!(has_write && has_read);
}

#[test]
fn abort_paths_match_sigabrt_rows() {
    let r = exec(
        r#"fn main() {
            n = zext32(in[0]) << 24;
            b = alloc_abort("glib@2", n * 16);
        }"#,
        &[0x38], // 0x38000000 * 16 wraps to 0x80000000 → allocation fails → abort
    );
    assert!(matches!(r.outcome, Outcome::Aborted(_)), "{:?}", r.outcome);
    assert!(r.allocs[0].failed);
    assert!(r.allocs[0].size_ovf);
}
