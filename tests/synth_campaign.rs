//! Facade-level integration: forged suites flow through `diode::synth`
//! into `diode::engine` campaigns and grade perfectly, alongside (not
//! instead of) the five paper applications.

use diode::engine::{CampaignApp, CampaignSpec, ExecutionMode};
use diode::synth::{forge, score, GroundTruth, SynthConfig};

#[test]
fn forged_suite_grades_perfectly_through_the_facade() {
    let cfg = SynthConfig {
        apps: 6,
        rng_seed: 0xFACADE,
        ..SynthConfig::default()
    };
    let suite = forge(&cfg);
    let parallel = CampaignSpec::new(suite.campaign_apps()).run();
    let sequential = CampaignSpec {
        mode: ExecutionMode::Sequential,
        shared_cache: false,
        ..CampaignSpec::new(suite.campaign_apps())
    }
    .run();
    assert_eq!(
        parallel.outcome_fingerprint(),
        sequential.outcome_fingerprint()
    );
    let card = score(&parallel, &suite.oracle);
    assert!(card.is_perfect(), "mismatches: {:?}", card.mismatches);
    assert_eq!(parallel.counts(), suite.oracle.expected_counts());
}

#[test]
fn mixed_campaigns_grade_only_their_forged_part() {
    // One real §5 app plus a forged app in the same campaign: scoring
    // must ignore the real app's unit entirely.
    let vlc = diode::apps::vlc::app();
    let suite = forge(&SynthConfig {
        apps: 1,
        min_sites: 2,
        max_sites: 2,
        rng_seed: 0x111,
        ..SynthConfig::default()
    });
    let mut apps = vec![CampaignApp::new(
        vlc.name,
        vlc.program,
        vlc.format,
        vlc.seed,
    )];
    apps.extend(suite.campaign_apps());
    let report = CampaignSpec::new(apps).run();
    assert_eq!(report.units.len(), 2);
    let card = score(&report, &suite.oracle);
    assert_eq!(card.graded, 2, "only the forged app's sites are graded");
    assert!(card.is_perfect(), "mismatches: {:?}", card.mismatches);
    // The VLC unit still reproduces its Table 1 row in the same campaign.
    let vlc_unit = report.unit("VLC 0.8.6h").expect("vlc unit");
    assert_eq!(vlc_unit.counts(), (4, 4, 0, 0));
}

#[test]
fn oracle_counts_are_consistent_with_planted_truth() {
    let suite = forge(&SynthConfig::default().with_apps(12));
    let (total, exposable, unsat, prevented) = suite.oracle.expected_counts();
    assert_eq!(total, exposable + unsat + prevented);
    let by_hand = suite
        .oracle
        .apps
        .iter()
        .flat_map(|a| &a.sites)
        .filter(|s| s.truth == GroundTruth::Exposable)
        .count();
    assert_eq!(by_hand, exposable);
    for app in &suite.oracle.apps {
        let per_app = suite.oracle.expected_counts_for(&app.app);
        assert_eq!(per_app.0, app.sites.len());
    }
}
