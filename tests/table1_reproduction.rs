//! The headline reproduction test: DIODE's classification of all 40
//! target sites across the five benchmark applications matches the
//! paper's Table 1 exactly — per-application counts *and* per-site
//! classes.

use diode::apps::{all_apps, SiteClass};
use diode::core::{analyze_program, DiodeConfig, SiteOutcome};

#[test]
fn table_1_reproduces_exactly() {
    let apps = all_apps();
    let config = DiodeConfig::default();
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    for app in &apps {
        let analysis = analyze_program(&app.program, &app.seed, &app.format, &config);
        assert_eq!(
            analysis.counts(),
            app.expected_counts(),
            "{}: classification counts diverge from Table 1",
            app.name
        );
        // Per-site classes, not just counts.
        for report in &analysis.sites {
            let expected = app
                .expected_for(&report.site)
                .unwrap_or_else(|| panic!("{}: unexpected site {}", app.name, report.site));
            let got = match report.outcome {
                SiteOutcome::Exposed(_) => SiteClass::Exposed,
                SiteOutcome::TargetUnsat => SiteClass::Unsat,
                SiteOutcome::Prevented(_) => SiteClass::Prevented,
                SiteOutcome::Unknown => panic!("{}: unknown outcome", report.site),
            };
            assert_eq!(
                got, expected.class,
                "{}: site {} classified {} (paper: {})",
                app.name, report.site, got, expected.class
            );
        }
        let c = analysis.counts();
        totals = (
            totals.0 + c.0,
            totals.1 + c.1,
            totals.2 + c.2,
            totals.3 + c.3,
        );
    }
    // Paper: 40 sites, 14 exposed, 17 unsatisfiable, 9 check-prevented.
    assert_eq!(totals, (40, 14, 17, 9));
}
