//! §5.4's blocking-check experiment: the constraint "overflow the target
//! AND follow the seed path through every relevant conditional branch" is
//! satisfiable for exactly two of the fourteen exposed sites — SwfPlay's
//! jpeg.c@192 and CWebP's jpegdec.c@248.

use diode::apps::all_apps;
use diode::core::{analyze_program, full_path_constraint_satisfiable, DiodeConfig, SiteOutcome};

#[test]
fn full_path_constraint_satisfiable_for_exactly_the_papers_two_sites() {
    let apps = all_apps();
    let config = DiodeConfig::default();
    let mut sat_sites = Vec::new();
    let mut total_exposed = 0;
    for app in &apps {
        let analysis = analyze_program(&app.program, &app.seed, &app.format, &config);
        for report in &analysis.sites {
            if !matches!(report.outcome, SiteOutcome::Exposed(_)) {
                continue;
            }
            total_exposed += 1;
            let extraction = report.extraction.as_ref().unwrap();
            if full_path_constraint_satisfiable(extraction, &config.solver) == Some(true) {
                sat_sites.push(report.site.clone());
            }
        }
    }
    assert_eq!(total_exposed, 14);
    sat_sites.sort();
    assert_eq!(
        sat_sites,
        vec!["jpeg.c@192".to_string(), "jpegdec.c@248".to_string()],
        "paper §5.4: exactly these two sites"
    );
}
