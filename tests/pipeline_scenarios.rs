//! Cross-crate end-to-end scenarios beyond the paper's benchmarks:
//! exercising enforcement mechanics (skip-and-backtrack, budget limits,
//! SatisfiesPhi termination) and the three-way classification on
//! synthetic programs.

use diode::core::{analyze_program, DiodeConfig, PreventedReason, SiteOutcome};
use diode::format::FormatDesc;

fn analyze(src: &str, seed: &[u8]) -> diode::core::ProgramAnalysis {
    let program = diode::lang::parse(src).unwrap();
    analyze_program(
        &program,
        seed,
        &FormatDesc::new("t"),
        &DiodeConfig::default(),
    )
}

#[test]
fn three_way_classification_on_one_program() {
    let analysis = analyze(
        r#"
        fn main() {
            n = zext32(in[0]) << 8 | zext32(in[1]);
            small = in[2];
            // Unsat: a byte times a small constant cannot overflow.
            a = alloc("unsat@5", zext32(small) * 3 + 9);
            if a == 0 { error("oom"); }
            // Prevented: a correct guard (unguarded, 0xFFFF * 70000
            // would overflow; guarded, 1000 * 70000 cannot).
            if n > 1000 { error("too big"); }
            b = alloc("prevented@8", n * 70000 + 1);
            if b == 0 { error("oom"); }
            // Exposed: guard present but range still overflowable.
            c = alloc("exposed@10", n * n * 70000);
            t = zext64(n) * zext64(n) * 70000u64;
            p = 0u64;
            while p < 16u64 { c[t * p / 16u64] = 0u8; p = p + 1u64; }
        }
        "#,
        &[0x00, 0x10, 0x05],
    );
    assert_eq!(analysis.counts(), (3, 1, 1, 1));
    assert!(matches!(
        analysis.site("unsat@5").unwrap().outcome,
        SiteOutcome::TargetUnsat
    ));
    assert!(matches!(
        analysis.site("prevented@8").unwrap().outcome,
        SiteOutcome::Prevented(_)
    ));
    let exposed = analysis.site("exposed@10").unwrap();
    let SiteOutcome::Exposed(bug) = &exposed.outcome else {
        panic!("{:?}", exposed.outcome)
    };
    let n = u32::from(bug.input[0]) << 8 | u32::from(bug.input[1]);
    assert!(n <= 1000, "the guard was navigated, not bypassed");
    assert!(u64::from(n) * u64::from(n) * 70_000 > u64::from(u32::MAX));
}

#[test]
fn blocking_loop_is_skipped_not_enforced() {
    // A loop whose trip count depends on the relevant field sits between
    // the sanity check and the site: the compressed loop condition pins
    // the field (making enforcement unsatisfiable), so DIODE must skip it
    // and enforce only the check.
    let analysis = analyze(
        r#"
        fn main() {
            n = zext32(in[0]) << 8 | zext32(in[1]);
            if n > 60000 { error("range"); }
            i = 0;
            while i < n { i = i + 1; }          // blocking loop
            buf = alloc("blocked@6", n * 80000);
            t = zext64(n) * 80000u64;
            p = 0u64;
            while p < 16u64 { buf[t * p / 16u64] = 0u8; p = p + 1u64; }
        }
        "#,
        &[0x00, 0x10],
    );
    let report = analysis.site("blocked@6").unwrap();
    let SiteOutcome::Exposed(bug) = &report.outcome else {
        panic!("must still be exposed: {:?}", report.outcome)
    };
    assert!(bug.enforced <= 1, "only the sanity check may be enforced");
}

#[test]
fn fully_guarded_site_is_prevented_with_unsat_evidence() {
    let analysis = analyze(
        r#"
        fn main() {
            w = zext32(in[0]) << 8 | zext32(in[1]);
            h = zext32(in[2]) << 8 | zext32(in[3]);
            if w > 1000 { error("w"); }
            if h > 1000 { error("h"); }
            buf = alloc("guarded@6", w * h * 4 + 64);
            if buf == 0 { error("oom"); }
        }
        "#,
        &[0x00, 0x20, 0x00, 0x20],
    );
    match &analysis.site("guarded@6").unwrap().outcome {
        SiteOutcome::Prevented(PreventedReason::ConstraintUnsat { enforced }) => {
            assert!(*enforced <= 2, "at most both checks get enforced");
        }
        other => panic!("expected unsat-prevented, got {other:?}"),
    }
}

#[test]
fn satisfies_phi_termination_when_no_error_manifests() {
    // β is satisfiable and no check blocks it, but the program never
    // touches the buffer, so no error can be observed: the loop must
    // terminate via the satisfies-φ exit rather than spin.
    let analysis = analyze(
        r#"
        fn main() {
            n = zext32(in[0]) << 8 | zext32(in[1]);
            buf = alloc("silent@3", n * 80000);
            x = 1;
        }
        "#,
        &[0x00, 0x10],
    );
    match &analysis.site("silent@3").unwrap().outcome {
        SiteOutcome::Prevented(PreventedReason::SatisfiesPhi { enforced }) => {
            assert_eq!(*enforced, 0);
        }
        other => panic!("expected SatisfiesPhi, got {other:?}"),
    }
}

#[test]
fn multiple_sites_share_relevant_bytes_independently() {
    // Two sites over the same field with different guards must classify
    // independently.
    let analysis = analyze(
        r#"
        fn main() {
            n = zext32(in[0]) << 8 | zext32(in[1]);
            a = alloc("first@3", n * 70000);
            t = zext64(n) * 70000u64;
            p = 0u64;
            while p < 8u64 { a[t * p / 8u64] = 0u8; p = p + 1u64; }
            if n > 500 { error("late check"); }
            b = alloc("second@8", n * 70000 + 1);
            if b == 0 { error("oom"); }
        }
        "#,
        &[0x00, 0x10],
    );
    assert!(matches!(
        analysis.site("first@3").unwrap().outcome,
        SiteOutcome::Exposed(_)
    ));
    // 500 * 70000 + 1 < 2^32: the late check prevents the second site.
    assert!(matches!(
        analysis.site("second@8").unwrap().outcome,
        SiteOutcome::Prevented(_)
    ));
}
