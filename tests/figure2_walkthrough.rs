//! The §2 walkthrough as an executable test: DIODE's generated Dillo
//! input satisfies checks 1–4, evades check 5 through that check's own
//! overflow, and overflows rowbytes × height at png.c@203 — and the
//! paper's reported final solution is accepted by our model too.

use diode::apps::dillo;
use diode::core::{analyze_site, identify_target_sites, DiodeConfig, SiteOutcome};
use diode::interp::{run, Concrete, MachineConfig};

fn checks_hold(width: u32, height: u32, bit_depth: u8) -> bool {
    let uint31 = width < 1 << 31 && height < 1 << 31;
    let user_limit = width <= 1_000_000 && height <= 1_000_000;
    let depth_ok = [1u8, 2, 4, 8, 16].contains(&bit_depth);
    let wrapped = width.wrapping_mul(height) as i32;
    let dillo_check = wrapped.unsigned_abs() <= 36_000_000;
    uint31 && user_limit && depth_ok && dillo_check
}

fn target_overflows(width: u32, height: u32, bit_depth: u8) -> bool {
    let rowbytes = (u64::from(width) * u64::from(bit_depth) * 4) >> 3;
    rowbytes * u64::from(height) > u64::from(u32::MAX)
}

#[test]
fn diode_generates_a_section2_style_input() {
    let app = dillo::app();
    let config = DiodeConfig::default();
    let sites = identify_target_sites(&app.program, &app.seed, &config.machine);
    let fig2 = sites.iter().find(|s| &*s.site == "png.c@203").unwrap();
    let report = analyze_site(&app.program, &app.seed, &app.format, fig2, &config);
    let SiteOutcome::Exposed(bug) = &report.outcome else {
        panic!("figure 2 site must be exposed: {:?}", report.outcome);
    };
    let width = u32::from_be_bytes(bug.input[16..20].try_into().unwrap());
    let height = u32::from_be_bytes(bug.input[20..24].try_into().unwrap());
    let bit_depth = bug.input[24];
    assert!(
        checks_hold(width, height, bit_depth),
        "generated input must satisfy/evade all five checks: w={width} h={height} bd={bit_depth}"
    );
    assert!(target_overflows(width, height, bit_depth));
    // The paper's narrative: a modest number of enforced sanity checks.
    assert!(
        (2..=6).contains(&bug.enforced),
        "enforced = {}",
        bug.enforced
    );
}

#[test]
fn papers_final_solution_triggers_in_our_model() {
    // §2: width 689853, height 915210, bit_depth 4.
    let (w, h, bd) = (689_853u32, 915_210u32, 4u8);
    assert!(checks_hold(w, h, bd));
    assert!(target_overflows(w, h, bd));
    let app = dillo::app();
    let mut patches: Vec<(u32, u8)> = Vec::new();
    patches.extend(
        w.to_be_bytes()
            .iter()
            .enumerate()
            .map(|(i, &v)| (16 + i as u32, v)),
    );
    patches.extend(
        h.to_be_bytes()
            .iter()
            .enumerate()
            .map(|(i, &v)| (20 + i as u32, v)),
    );
    patches.push((24, bd));
    let input = app.format.reconstruct(&app.seed, patches);
    let r = run(&app.program, &input, Concrete, &MachineConfig::default());
    assert!(r.overflowed_at(
        r.allocs
            .iter()
            .find(|a| &*a.site == "png.c@203")
            .unwrap()
            .label
    ));
    assert!(r.outcome.is_segfault() || !r.mem_errors.is_empty());
}

#[test]
fn papers_intermediate_candidates_are_rejected_like_in_section2() {
    // §2's enforcement trail: each intermediate candidate fails the next
    // sanity check.
    let app = dillo::app();
    let cases: [(u32, u32, u8, &str); 2] = [
        // After enforcing uint31(h): h fits 31 bits but exceeds 1M.
        (1_632_109_428, 872_360_950, 4, "invalid IHDR"),
        // After enforcing h ≤ 1M: width still exceeds 1M.
        (1_081_489_513, 732_927, 4, "invalid IHDR"),
    ];
    for (w, h, bd, expected) in cases {
        let mut patches: Vec<(u32, u8)> = Vec::new();
        patches.extend(
            w.to_be_bytes()
                .iter()
                .enumerate()
                .map(|(i, &v)| (16 + i as u32, v)),
        );
        patches.extend(
            h.to_be_bytes()
                .iter()
                .enumerate()
                .map(|(i, &v)| (20 + i as u32, v)),
        );
        patches.push((24, bd));
        let input = app.format.reconstruct(&app.seed, patches);
        let r = run(&app.program, &input, Concrete, &MachineConfig::default());
        match &r.outcome {
            diode::interp::Outcome::InputRejected(msg) => {
                assert!(msg.contains(expected), "expected {expected:?}, got {msg:?}")
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }
}
