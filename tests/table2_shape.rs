//! Table 2's structural claims (§5.3, §5.5, §5.6):
//!
//! * 9 of the 14 overflows need no branch enforcement;
//! * the other 5 need a small number (the paper: 2–5);
//! * the CVE-2008-2430 constraint has exactly two solutions, both
//!   triggering without a crash;
//! * target-only success rates are bimodal: ~0 for sanity-checked sites,
//!   ~all for check-free sites;
//! * target+enforced success rates are high for the enforced sites.

use diode::apps::all_apps;
use diode::core::{analyze_program, success_rate, DiodeConfig, SiteOutcome};

#[test]
fn enforcement_counts_match_the_papers_bands() {
    let apps = all_apps();
    let config = DiodeConfig::default();
    let mut zero_enforced = 0;
    let mut nonzero = Vec::new();
    for app in &apps {
        let analysis = analyze_program(&app.program, &app.seed, &app.format, &config);
        for report in &analysis.sites {
            let SiteOutcome::Exposed(bug) = &report.outcome else {
                continue;
            };
            let expected = app.expected_for(&report.site).unwrap();
            let (paper_enf, _) = expected.paper_enforced.unwrap();
            if paper_enf == 0 {
                assert_eq!(
                    bug.enforced, 0,
                    "{}: paper finds this without enforcement",
                    report.site
                );
                zero_enforced += 1;
            } else {
                assert!(
                    (1..=8).contains(&bug.enforced),
                    "{}: enforced {} outside the paper's band",
                    report.site,
                    bug.enforced
                );
                nonzero.push(bug.enforced);
            }
        }
    }
    // Paper §1.2: 9 of 14 without enforcement; the rest 2..=5 (min 2,
    // avg 4, max 5).
    assert_eq!(zero_enforced, 9);
    assert_eq!(nonzero.len(), 5);
    let min = *nonzero.iter().min().unwrap();
    let max = *nonzero.iter().max().unwrap();
    assert!(min >= 1 && max <= 8, "enforced range {min}..={max}");
}

#[test]
fn success_rates_are_bimodal() {
    let apps = all_apps();
    let config = DiodeConfig::default();
    let samples = 12;
    for app in &apps {
        let analysis = analyze_program(&app.program, &app.seed, &app.format, &config);
        for report in &analysis.sites {
            let SiteOutcome::Exposed(bug) = &report.outcome else {
                continue;
            };
            let expected = app.expected_for(&report.site).unwrap();
            let (paper_hits, paper_n) = expected.paper_target_rate.unwrap();
            let extraction = report.extraction.as_ref().unwrap();
            let rate = success_rate(
                &app.program,
                &app.seed,
                &app.format,
                report.label,
                &extraction.beta,
                samples,
                99,
                &config,
            );
            if paper_hits == 0 {
                // Sanity-checked sites: target-only samples rarely pass.
                assert!(
                    rate.hits <= rate.samples / 3,
                    "{}: paper 0/{paper_n}, measured {rate}",
                    report.site
                );
            } else if paper_hits >= paper_n / 2 {
                // Check-free sites: the vast majority trigger.
                assert!(
                    rate.hits * 3 >= rate.samples * 2,
                    "{}: paper {paper_hits}/{paper_n}, measured {rate}",
                    report.site
                );
            }
            // Enforced-rate experiment for enforced sites: high success.
            if bug.enforced > 0 {
                let erate = success_rate(
                    &app.program,
                    &app.seed,
                    &app.format,
                    report.label,
                    &bug.constraint,
                    samples,
                    100,
                    &config,
                );
                assert!(
                    erate.hits * 3 >= erate.samples * 2,
                    "{}: enforced rate too low: {erate}",
                    report.site
                );
            }
        }
    }
}

#[test]
fn cve_2008_2430_has_exactly_two_solutions() {
    let app = all_apps().remove(1); // VLC
    assert_eq!(app.name, "VLC 0.8.6h");
    let config = DiodeConfig::default();
    let analysis = analyze_program(&app.program, &app.seed, &app.format, &config);
    let report = analysis.site("wav.c@147").unwrap();
    let extraction = report.extraction.as_ref().unwrap();
    let rate = success_rate(
        &app.program,
        &app.seed,
        &app.format,
        report.label,
        &extraction.beta,
        200,
        1,
        &config,
    );
    assert!(rate.exhaustive, "solution space must be enumerated");
    assert_eq!(rate.samples, 2, "x + 2 has exactly two overflowing inputs");
    assert_eq!(rate.hits, 2, "both trigger (paper: 2/2)");
    // And the triggering runs do not crash (InvalidRead/Write row).
    let SiteOutcome::Exposed(bug) = &report.outcome else {
        panic!()
    };
    assert_eq!(bug.error_type, "InvalidRead/Write");
}
